package core

import (
	"sort"

	"webfail/internal/httpsim"
	"webfail/internal/stats"
)

// MinEpisodeSamples is the minimum transactions an entity needs in an
// hour for its failure rate there to be meaningful. The paper sized its
// access rate to guarantee "a few hundred accesses per client and per
// server in each episode"; dialup virtual clients see far fewer, so a
// floor keeps tiny-sample rates from dominating.
const MinEpisodeSamples = 8

// EpisodeRateCDFs returns the distribution of per-entity per-hour failure
// rates, separately for clients and servers — Figure 4, whose knee picks
// the threshold f.
//
// The scans run over materialized cells only (forEach): untouched cells
// have zero transactions and cannot pass the MinEpisodeSamples filter,
// so the dense and sparse backends produce identical CDFs.
func (a *Analysis) EpisodeRateCDFs() (clients, servers *stats.CDF) {
	g := a.mustGrids()
	var cs, ss []float64
	g.client.forEach(func(_ int, cell *gridCell) {
		if cell.Txns >= MinEpisodeSamples {
			cs = append(cs, float64(cell.FailTxns)/float64(cell.Txns))
		}
	})
	g.server.forEach(func(_ int, cell *gridCell) {
		if cell.Txns >= MinEpisodeSamples {
			ss = append(ss, float64(cell.FailTxns)/float64(cell.Txns))
		}
	})
	return stats.NewCDF(cs), stats.NewCDF(ss)
}

// Knee locates the knee of both Figure 4 CDFs and returns the suggested
// episode threshold f (the larger of the two knees, so both entity kinds
// are in their abnormal range beyond it).
func (a *Analysis) Knee() (f float64, err error) {
	cCDF, sCDF := a.EpisodeRateCDFs()
	ck, err := kneeOf(cCDF)
	if err != nil {
		return 0, err
	}
	sk, err := kneeOf(sCDF)
	if err != nil {
		return 0, err
	}
	if sk > ck {
		return sk, nil
	}
	return ck, nil
}

func kneeOf(c *stats.CDF) (float64, error) {
	xs, _ := c.Points(c.Len())
	return stats.Knee(xs)
}

// PermanentPair is a client-server pair with near-permanent failure
// (Section 4.4.2: failure rate over 90% through the month).
type PermanentPair struct {
	Client, Site int
	Txns, Fails  int64
	Rate         float64
}

// pairBetter is the strict total order permanent-pair listings sort by:
// rate descending, ties broken on the pair indexes (rate ties are
// common — many pairs fail 100% of the time).
func pairBetter(a, b PermanentPair) bool {
	if a.Rate != b.Rate {
		return a.Rate > b.Rate
	}
	if a.Client != b.Client {
		return a.Client < b.Client
	}
	return a.Site < b.Site
}

// PermanentPairs detects pairs whose month-long transaction failure rate
// exceeds threshold (the paper uses 0.9) with a minimum sample size.
// The result is complete (attribution needs the full exclusion set);
// use TopFailingPairs when only the worst offenders matter and the
// roster is too large to retain every candidate.
//
// Untouched sparse cells have zero transactions and fail the
// minimum-sample filter, so both backends detect the same pairs.
func (a *Analysis) PermanentPairs(threshold float64) []PermanentPair {
	pp := a.mustPairs()
	var out []PermanentPair
	pp.cells.forEach(func(i int, cell *pairCell) {
		if cell.Txns < 20 {
			return
		}
		rate := float64(cell.Fails) / float64(cell.Txns)
		if rate > threshold {
			out = append(out, PermanentPair{
				Client: i / a.nSites, Site: i % a.nSites,
				Txns: cell.Txns, Fails: cell.Fails, Rate: rate,
			})
		}
	})
	sort.Slice(out, func(i, j int) bool { return pairBetter(out[i], out[j]) })
	return out
}

// TopFailingPairs streams every qualifying pair (same filter and order
// as PermanentPairs at threshold) through a bounded top-k heap,
// retaining at most k candidates at any moment — O(k) memory for
// mega-rosters where the full listing would not fit. The order is the
// strict total order PermanentPairs sorts by, so the result equals
// PermanentPairs(threshold) truncated to k.
func (a *Analysis) TopFailingPairs(threshold float64, k int) []PermanentPair {
	pp := a.mustPairs()
	top := newTopK[PermanentPair](k, func(x, y PermanentPair) bool { return pairBetter(y, x) })
	pp.cells.forEach(func(i int, cell *pairCell) {
		if cell.Txns < 20 {
			return
		}
		rate := float64(cell.Fails) / float64(cell.Txns)
		if rate > threshold {
			top.push(PermanentPair{
				Client: i / a.nSites, Site: i % a.nSites,
				Txns: cell.Txns, Fails: cell.Fails, Rate: rate,
			})
		}
	})
	return top.sorted()
}

// PermanentPairShare reports the fraction of all failed *connections* and
// failed transactions carried by the given pairs (the paper: 50.7% of
// connection failures but only 13% of transaction failures).
func (a *Analysis) PermanentPairShare(pairs []PermanentPair) (connShare, txnShare float64) {
	excl := make(map[[2]int32]bool, len(pairs))
	for _, p := range pairs {
		excl[[2]int32{int32(p.Client), int32(p.Site)}] = true
	}
	var exclConns, totalConns, exclTxns int64
	for _, f := range a.Failures() {
		fc := int64(f.Conns)
		if f.Stage != httpsim.StageTCP {
			fc = 0 // only TCP failures have failed connections here
		}
		totalConns += fc
		if excl[[2]int32{f.Client, f.Site}] {
			exclConns += fc
			exclTxns++
		}
	}
	if totalConns > 0 {
		connShare = float64(exclConns) / float64(totalConns)
	}
	if fails := a.TotalFails(); fails > 0 {
		txnShare = float64(exclTxns) / float64(fails)
	}
	return connShare, txnShare
}

// Blame is the attribution category of Table 5.
type Blame uint8

// Blame categories (Section 4.4.4).
const (
	BlameOther Blame = iota
	BlameServer
	BlameClient
	BlameBoth
)

func (b Blame) String() string {
	switch b {
	case BlameServer:
		return "server-side"
	case BlameClient:
		return "client-side"
	case BlameBoth:
		return "both"
	default:
		return "other"
	}
}

// Attribution is the result of the blame-attribution pass.
type Attribution struct {
	F float64
	// Counts per blame category, over TCP connection failures (the
	// paper's Section 4.4 applies the procedure to TCP failures, with
	// permanent pairs excluded).
	Counts map[Blame]int64
	Total  int64

	// Per-failure blame, aligned with the subset of a.Failures that
	// was classified (TCP failures outside excluded pairs). Used by
	// the spread and proxy analyses.
	Tags []TaggedFailure

	// Episode sets for reuse: ClientEpisodeHours[c] and
	// ServerEpisodeHours[s] hold the hour indices flagged abnormal, as
	// bitsets (~Hours/8 bytes per entity with episodes, vs ~48 bytes
	// per member for the map[int64]bool they replaced). Entities with
	// no episodes hold the zero HourSet, on which Has is always false.
	ClientEpisodeHours []HourSet
	ServerEpisodeHours []HourSet
}

// TaggedFailure pairs a failure with its attribution.
type TaggedFailure struct {
	FailureRec
	Blame Blame
}

// Share returns a blame category's fraction of classified failures.
func (at *Attribution) Share(b Blame) float64 {
	if at.Total == 0 {
		return 0
	}
	return float64(at.Counts[b]) / float64(at.Total)
}

// Attribute runs the blame-attribution procedure of Section 4.4.1/4.4.4
// at threshold f: a failed access is ascribed to the server when the
// server's aggregate failure rate in that hour is abnormally high (>= f),
// to the client when the client's is, to both when both are, and to
// "other" when neither. Pairs in exclude (the permanent pairs of
// Section 4.4.2) are left out entirely.
func (a *Analysis) Attribute(f float64, exclude []PermanentPair) *Attribution {
	excl := make(map[[2]int32]bool, len(exclude))
	for _, p := range exclude {
		excl[[2]int32{int32(p.Client), int32(p.Site)}] = true
	}

	at := &Attribution{
		F:                  f,
		Counts:             make(map[Blame]int64),
		ClientEpisodeHours: make([]HourSet, a.nClients),
		ServerEpisodeHours: make([]HourSet, a.nSites),
	}

	// Identify failure episodes per entity-hour, scanning materialized
	// cells only: the exclusion adjustment only lowers counts, so a cell
	// that is zero (or absent in sparse mode) can never reach the
	// minimum-sample bar, and both backends flag the same hours.
	// Excluded pairs' traffic is removed from the rates so a
	// permanently-blocked pair does not manufacture fake episodes for
	// its endpoints. The hour bitsets double as the classification
	// lookup below, replacing the dense clients x hours flag arrays the
	// dense-only implementation used.
	g := a.mustGrids()
	exclCell := a.excludedCells(excl)
	flagEpisodes := func(sets []HourSet, gr *grid[gridCell], adjs map[int]gridCell) {
		gr.forEach(func(i int, cell *gridCell) {
			adj := adjs[i]
			txns := cell.Txns - adj.Txns
			fails := cell.FailTxns - adj.FailTxns
			if txns >= MinEpisodeSamples && float64(fails)/float64(txns) >= f {
				set := &sets[i/a.Hours]
				if set.bits == nil {
					*set = NewHourSet(a.Hours)
				}
				set.Add(i % a.Hours)
			}
		})
	}
	flagEpisodes(at.ClientEpisodeHours, &g.client, exclCell.client)
	flagEpisodes(at.ServerEpisodeHours, &g.server, exclCell.server)

	// Classify each TCP connection failure.
	for _, fr := range a.Failures() {
		if fr.Stage != httpsim.StageTCP {
			continue
		}
		if excl[[2]int32{fr.Client, fr.Site}] {
			continue
		}
		cFlag := at.ClientEpisodeHours[fr.Client].Has(int(fr.Hour))
		sFlag := at.ServerEpisodeHours[fr.Site].Has(int(fr.Hour))
		var b Blame
		switch {
		case cFlag && sFlag:
			b = BlameBoth
		case sFlag:
			b = BlameServer
		case cFlag:
			b = BlameClient
		default:
			b = BlameOther
		}
		at.Counts[b]++
		at.Total++
		at.Tags = append(at.Tags, TaggedFailure{FailureRec: fr, Blame: b})
	}
	return at
}

// excludedCells accumulates the per-entity-hour traffic belonging to
// excluded pairs, for subtraction. The failure list holds only failures;
// totals come from pair counts spread across hours — we approximate by
// removing the pair's failures (which is what distorts rates) and the
// same number of transactions. The adjustments are keyed by grid index
// and derived from the failure list, so they are proportional to the
// excluded traffic, never to roster geometry (the dense temporaries
// they replace would be GBs at mega-roster scale).
type exclGrid struct {
	client map[int]gridCell
	server map[int]gridCell
}

func (a *Analysis) excludedCells(excl map[[2]int32]bool) exclGrid {
	g := exclGrid{
		client: make(map[int]gridCell),
		server: make(map[int]gridCell),
	}
	if len(excl) == 0 {
		return g
	}
	bump := func(m map[int]gridCell, i int) {
		c := m[i]
		c.Txns++
		c.FailTxns++
		m[i] = c
	}
	for _, fr := range a.Failures() {
		if !excl[[2]int32{fr.Client, fr.Site}] {
			continue
		}
		bump(g.client, int(fr.Client)*a.Hours+int(fr.Hour))
		bump(g.server, int(fr.Site)*a.Hours+int(fr.Hour))
	}
	return g
}

// ServerEpisodeStat is one row of Table 6.
type ServerEpisodeStat struct {
	Site string
	// EpisodeHours is the number of 1-hour server-side failure
	// episodes.
	EpisodeHours int
	// Coalesced is the count after merging consecutive hours
	// (Section 4.4.5).
	Coalesced int
	// LongestRun is the longest consecutive episode stretch in hours
	// (sina: 448 h in the paper).
	LongestRun int
	// Spread is the fraction of all clients needed to account for the
	// failures ascribed to this server's episodes (Section 4.4.6 #1).
	Spread float64
}

// ServerEpisodeStats produces Table 6 from an attribution, sorted by
// episode count descending.
func (a *Analysis) ServerEpisodeStats(at *Attribution) []ServerEpisodeStat {
	// Clients affected by failures ascribed to each server.
	affected := make([]map[int32]bool, a.nSites)
	for _, tf := range at.Tags {
		if tf.Blame != BlameServer && tf.Blame != BlameBoth {
			continue
		}
		if affected[tf.Site] == nil {
			affected[tf.Site] = make(map[int32]bool)
		}
		affected[tf.Site][tf.Client] = true
	}

	var out []ServerEpisodeStat
	for s := 0; s < a.nSites; s++ {
		sorted := at.ServerEpisodeHours[s].Hours()
		if len(sorted) == 0 {
			continue
		}
		coalesced, longest := coalesceRuns(sorted)
		st := ServerEpisodeStat{
			Site:         a.Topo.Websites[s].Host,
			EpisodeHours: len(sorted),
			Coalesced:    coalesced,
			LongestRun:   longest,
		}
		if aff := affected[s]; len(aff) > 0 {
			st.Spread = float64(len(aff)) / float64(a.nClients)
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].EpisodeHours != out[j].EpisodeHours {
			return out[i].EpisodeHours > out[j].EpisodeHours
		}
		return out[i].Site < out[j].Site
	})
	return out
}

// coalesceRuns merges consecutive hour indices, returning the run count
// and the longest run length.
func coalesceRuns(sorted []int) (runs, longest int) {
	if len(sorted) == 0 {
		return 0, 0
	}
	runs = 1
	cur := 1
	longest = 1
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1]+1 {
			cur++
		} else {
			runs++
			cur = 1
		}
		if cur > longest {
			longest = cur
		}
	}
	return runs, longest
}

// ServersWithEpisodes counts websites with at least one / more than one
// server-side failure episode (the paper: 56 of 80 with >= 1, 39 with
// multiple).
func (a *Analysis) ServersWithEpisodes(at *Attribution) (atLeastOne, multiple int) {
	for s := 0; s < a.nSites; s++ {
		n := at.ServerEpisodeHours[s].Len()
		if n >= 1 {
			atLeastOne++
		}
		if n > 1 {
			multiple++
		}
	}
	return atLeastOne, multiple
}

// PairSpecificResult summarizes client-server-specific failure episodes
// (Section 2.2, category 3): (client, server, hour) cells with an
// abnormally high failure rate while NEITHER endpoint is having a failure
// episode — e.g. a broken path segment unique to the pair. Table 5 folds
// these into "other"; this analysis pulls them back out.
type PairSpecificResult struct {
	// Episodes is the number of distinct (client, server, hour) cells
	// flagged.
	Episodes int
	// Failures is the number of classified failures inside those cells.
	Failures int64
	// ShareOfOther is Failures over all "other"-blamed failures.
	ShareOfOther float64
}

// ClientServerSpecific detects pair-specific episodes among an
// attribution's "other" failures. Per-pair-hour access totals are not
// retained (134x80x744 cells); the expected per-hour accesses of a pair
// equal the client's round rate (each round visits every site once), so
// the rate test uses that expectation.
func (a *Analysis) ClientServerSpecific(at *Attribution) PairSpecificResult {
	type cell struct {
		c, s int32
		h    int32
	}
	counts := make(map[cell]int64)
	var otherTotal int64
	for _, tf := range at.Tags {
		if tf.Blame != BlameOther {
			continue
		}
		otherTotal++
		counts[cell{tf.Client, tf.Site, tf.Hour}]++
	}
	var res PairSpecificResult
	for k, n := range counts {
		expected := a.Topo.Clients[k.c].RoundsPerHour * float64(a.binNS) / float64(3600_000_000_000)
		if expected <= 0 {
			continue
		}
		// Abnormal for the pair: at least 2 failures and a rate at or
		// above the attribution threshold.
		if n >= 2 && float64(n)/expected >= at.F {
			res.Episodes++
			res.Failures += n
		}
	}
	if otherTotal > 0 {
		res.ShareOfOther = float64(res.Failures) / float64(otherTotal)
	}
	return res
}
