package core

import (
	"net/netip"
	"sort"

	"webfail/internal/workload"
)

// ReplicaCensus is the Section 4.5 classification of websites by
// qualifying replica count: a server IP qualifies as a replica only when
// it accounts for at least MinReplicaShare of the site's connections.
type ReplicaCensus struct {
	Zero, One, Multi int
	// Qualifying maps site index -> qualifying replica addresses.
	Qualifying map[int][]netip.Addr
}

// MinReplicaShare is the paper's 10% qualification rule.
const MinReplicaShare = 0.10

// ReplicaCensusAt classifies websites by qualifying replicas under the
// given share threshold (Section 4.5; the threshold is an ablation knob).
func (a *Analysis) ReplicaCensusAt(minShare float64) ReplicaCensus {
	rp := a.mustReplicas()
	rc := ReplicaCensus{Qualifying: make(map[int][]netip.Addr)}
	for s := 0; s < a.nSites; s++ {
		total := rp.siteConns[s]
		var qual []netip.Addr
		for _, ri := range rp.replicaBySite[s] {
			if total > 0 && float64(rp.replicaConns[ri])/float64(total) >= minShare {
				qual = append(qual, rp.replicaAddrs[ri])
			}
		}
		switch len(qual) {
		case 0:
			rc.Zero++
		case 1:
			rc.One++
		default:
			rc.Multi++
		}
		rc.Qualifying[s] = qual
	}
	return rc
}

// ReplicaCensusDefault applies the paper's 10% rule.
func (a *Analysis) ReplicaCensusDefault() ReplicaCensus {
	return a.ReplicaCensusAt(MinReplicaShare)
}

// ReplicaFailureSplit is the Section 4.5 result: among server-side
// failure episodes of multi-replica sites, how many were total (all
// replicas abnormal) vs partial (a proper subset).
type ReplicaFailureSplit struct {
	MultiReplicaEpisodes int
	Total                int
	Partial              int
	// SameSubnetTotals counts total episodes whose replicas share a
	// /24 — the paper's explanation for why totals dominate.
	SameSubnetTotals int
	// ShareOfAllServerEpisodes is the fraction of all server-side
	// episodes belonging to multi-replica sites (62% in the paper).
	ShareOfAllServerEpisodes float64
}

// ReplicaAnalysis sub-classifies the attribution's server-side failure
// episodes at replica granularity.
func (a *Analysis) ReplicaAnalysis(at *Attribution, census ReplicaCensus) ReplicaFailureSplit {
	rp := a.mustReplicas()
	var split ReplicaFailureSplit
	totalEpisodes := 0
	for s := 0; s < a.nSites; s++ {
		hours := at.ServerEpisodeHours[s]
		totalEpisodes += hours.Len()
		qual := census.Qualifying[s]
		if len(qual) < 2 {
			continue
		}
		sameSubnet := replicasShareSubnet(qual)
		hours.ForEach(func(h int) {
			split.MultiReplicaEpisodes++
			// A replica is "failing" in the episode when its own
			// failure rate that hour is >= the attribution
			// threshold (with enough samples to judge).
			failing, observed := 0, 0
			for _, ri := range rp.replicaBySite[s] {
				if !containsAddr(qual, rp.replicaAddrs[ri]) {
					continue
				}
				cell := rp.replicaHours.val(int(ri)*a.Hours + h)
				if cell.Txns < 2 {
					continue
				}
				observed++
				if float64(cell.FailTxns)/float64(cell.Txns) >= at.F {
					failing++
				}
			}
			if observed > 0 && failing == observed {
				split.Total++
				if sameSubnet {
					split.SameSubnetTotals++
				}
			} else {
				split.Partial++
			}
		})
	}
	if totalEpisodes > 0 {
		split.ShareOfAllServerEpisodes = float64(split.MultiReplicaEpisodes) / float64(totalEpisodes)
	}
	return split
}

func containsAddr(list []netip.Addr, a netip.Addr) bool {
	for _, x := range list {
		if x == a {
			return true
		}
	}
	return false
}

// replicasShareSubnet reports whether all replicas share one /24.
func replicasShareSubnet(addrs []netip.Addr) bool {
	if len(addrs) < 2 {
		return true
	}
	first, err := addrs[0].Prefix(24)
	if err != nil {
		return false
	}
	for _, a := range addrs[1:] {
		p, err := a.Prefix(24)
		if err != nil || p != first {
			return false
		}
	}
	return true
}

// ProxyResidualRow is one column group of Table 9: residual failure rates
// of accesses to a website after excluding failures attributed to
// server-side or client-side episodes.
type ProxyResidualRow struct {
	Site string
	// PerClient maps client name -> residual failure rate (the CN
	// clients' rates are the table's headline).
	PerClient map[string]float64
	// NonCN is the pooled residual failure rate of all non-CN clients.
	NonCN float64
}

// ProxyResidual computes Table 9 for the given websites: for each client,
// failures of accesses to the site that fall in neither a server-side nor
// a client-side failure episode, over the client's total accesses to the
// site outside those episodes.
func (a *Analysis) ProxyResidual(at *Attribution, hosts []string) []ProxyResidualRow {
	g := a.mustGrids()
	siteIdx := make(map[string]int)
	for s := 0; s < a.nSites; s++ {
		siteIdx[a.Topo.Websites[s].Host] = s
	}
	var out []ProxyResidualRow
	for _, host := range hosts {
		s, ok := siteIdx[host]
		if !ok {
			continue
		}
		row := ProxyResidualRow{Site: host, PerClient: make(map[string]float64)}
		var nonCNFails, nonCNTotal int64

		// Residual failures per client come from the failure list;
		// residual totals from the hour grids minus episode hours.
		resFails := make([]int64, a.nClients)
		for _, fr := range a.Failures() {
			if int(fr.Site) != s {
				continue
			}
			if at.ServerEpisodeHours[s].Has(int(fr.Hour)) {
				continue
			}
			if at.ClientEpisodeHours[fr.Client].Has(int(fr.Hour)) {
				continue
			}
			resFails[fr.Client]++
		}
		for c := 0; c < a.nClients; c++ {
			var total int64
			for h := 0; h < a.Hours; h++ {
				if at.ServerEpisodeHours[s].Has(h) {
					continue
				}
				if at.ClientEpisodeHours[c].Has(h) {
					continue
				}
				// Per-pair-hour totals are not kept; approximate
				// by the client's per-hour share of accesses to
				// this site: accesses are uniform across sites,
				// so txns(client,hour)/nSites.
				total += int64(g.client.val(c*a.Hours+h).Txns) / int64(a.nSites)
			}
			if total == 0 {
				continue
			}
			rate := float64(resFails[c]) / float64(total)
			node := &a.Topo.Clients[c]
			if node.Category == workload.CN {
				row.PerClient[node.Name] = rate
			} else {
				nonCNFails += resFails[c]
				nonCNTotal += total
			}
		}
		if nonCNTotal > 0 {
			row.NonCN = float64(nonCNFails) / float64(nonCNTotal)
		}
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out
}
