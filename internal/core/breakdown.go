package core

import (
	"sort"

	"webfail/internal/httpsim"
	"webfail/internal/measure"
	"webfail/internal/stats"
	"webfail/internal/workload"
)

// CategorySummary is one row of Table 3 plus the Figure 1 stage split.
type CategorySummary struct {
	Category workload.Category
	Txns     int64
	FailTxns int64
	// Conns/FailConns are unavailable (zero) for CN, whose proxy masks
	// the client's wide-area connections (Table 3's N/A).
	Conns     int64
	FailConns int64
	// Stage fractions of failed transactions (Figure 1): DNS, TCP,
	// HTTP.
	DNSShare, TCPShare, HTTPShare float64
}

// TxnFailRate returns the category's transaction failure rate.
func (c *CategorySummary) TxnFailRate() float64 {
	return stats.Rate(int(c.FailTxns), int(c.Txns))
}

// ConnFailRate returns the category's connection failure rate.
func (c *CategorySummary) ConnFailRate() float64 {
	return stats.Rate(int(c.FailConns), int(c.Conns))
}

// Summary produces Table 3 / Figure 1, ordered PL, BB, DU, CN as in the
// paper's Table 3.
func (a *Analysis) Summary() []CategorySummary {
	t := a.mustTraffic()
	order := []workload.Category{workload.PL, workload.BB, workload.DU, workload.CN}
	out := make([]CategorySummary, 0, len(order))
	for _, cat := range order {
		s := CategorySummary{
			Category: cat,
			Txns:     t.catTxns[cat],
			FailTxns: t.catFails[cat],
		}
		if cat != workload.CN {
			s.Conns = t.catConns[cat]
			s.FailConns = t.catFailCo[cat]
		}
		if f := t.catFails[cat]; f > 0 {
			if sc := t.stageCounts[cat]; sc != nil {
				s.DNSShare = float64(sc[httpsim.StageDNS]) / float64(f)
				s.TCPShare = float64(sc[httpsim.StageTCP]) / float64(f)
				s.HTTPShare = float64(sc[httpsim.StageHTTP]) / float64(f)
			}
		}
		out = append(out, s)
	}
	return out
}

// MedianFailureRates returns the study's headline numbers: the median
// transaction failure rate across clients and across servers (1.47% and
// 1.63% in the paper).
func (a *Analysis) MedianFailureRates() (client, server float64) {
	g := a.mustGrids()
	cTotals := rowTotals(&g.client, a.Hours, a.nClients)
	cRates := make([]float64, 0, a.nClients)
	for _, t := range cTotals {
		if t.Txns > 0 {
			cRates = append(cRates, float64(t.FailTxns)/float64(t.Txns))
		}
	}
	sTotals := rowTotals(&g.server, a.Hours, a.nSites)
	sRates := make([]float64, 0, a.nSites)
	for _, t := range sTotals {
		if t.Txns > 0 {
			sRates = append(sRates, float64(t.FailTxns)/float64(t.Txns))
		}
	}
	return stats.Median(cRates), stats.Median(sRates)
}

// ClientFailureRateQuantile returns the q-quantile of per-client failure
// rates (the paper quotes the 95th percentile at 10%).
func (a *Analysis) ClientFailureRateQuantile(q float64) float64 {
	g := a.mustGrids()
	rates := make([]float64, 0, a.nClients)
	for _, t := range rowTotals(&g.client, a.Hours, a.nClients) {
		if t.Txns > 0 {
			rates = append(rates, float64(t.FailTxns)/float64(t.Txns))
		}
	}
	return stats.NewCDF(rates).Quantile(q)
}

// DNSBreakdownRow is one row of Table 4.
type DNSBreakdownRow struct {
	Category     workload.Category
	FailureCount int64
	LDNSTimeout  float64 // fraction
	NonLDNS      float64
	Error        float64
}

// DNSBreakdown produces Table 4 for the direct-access categories (CN is
// excluded: the proxy masks DNS).
func (a *Analysis) DNSBreakdown() []DNSBreakdownRow {
	t := a.mustTraffic()
	order := []workload.Category{workload.PL, workload.BB, workload.DU}
	out := make([]DNSBreakdownRow, 0, len(order))
	for _, cat := range order {
		dc := t.dnsClassByCat[cat]
		var total int64
		if dc != nil {
			total = dc[measure.DNSLDNSTimeout] + dc[measure.DNSNonLDNSTimeout] + dc[measure.DNSErrorResponse]
		}
		row := DNSBreakdownRow{Category: cat, FailureCount: total}
		if total > 0 {
			row.LDNSTimeout = float64(dc[measure.DNSLDNSTimeout]) / float64(total)
			row.NonLDNS = float64(dc[measure.DNSNonLDNSTimeout]) / float64(total)
			row.Error = float64(dc[measure.DNSErrorResponse]) / float64(total)
		}
		out = append(out, row)
	}
	return out
}

// DomainContribution is one website's contribution to a DNS failure
// class, for the Figure 2 cumulative curves.
type DomainContribution struct {
	Host  string
	Count int64
}

// DNSDomainSkew returns, for the given DNS failure class (or all classes
// when class == DNSOK is passed as the sentinel All), the per-website
// failure counts sorted descending — the input to Figure 2's cumulative
// contribution curves. A flat distribution across domains indicates
// client-side causes (LDNS timeouts); a skewed one indicates specific
// broken domains (errors).
func (a *Analysis) DNSDomainSkew(class measure.DNSOutcome, all bool) []DomainContribution {
	t := a.mustTraffic()
	out := make([]DomainContribution, 0, a.nSites)
	for si := 0; si < a.nSites; si++ {
		ds := t.dnsClassBySite[si]
		if ds == nil {
			continue
		}
		var n int64
		if all {
			n = ds[measure.DNSLDNSTimeout] + ds[measure.DNSNonLDNSTimeout] + ds[measure.DNSErrorResponse]
		} else {
			n = ds[class]
		}
		if n > 0 {
			out = append(out, DomainContribution{Host: a.Topo.Websites[si].Host, Count: n})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Host < out[j].Host
	})
	return out
}

// CumulativeShare converts sorted contributions to a cumulative-fraction
// series (the y-values of Figure 2 against domain rank).
func CumulativeShare(contribs []DomainContribution) []float64 {
	var total int64
	for _, c := range contribs {
		total += c.Count
	}
	if total == 0 {
		return nil
	}
	out := make([]float64, len(contribs))
	var run int64
	for i, c := range contribs {
		run += c.Count
		out[i] = float64(run) / float64(total)
	}
	return out
}

// TCPBreakdownRow is one bar group of Figure 3.
type TCPBreakdownRow struct {
	Category     workload.Category
	FailureCount int64
	NoConnection float64
	NoResponse   float64
	Partial      float64
}

// TCPBreakdown produces Figure 3 (CN excluded: the proxy masks wide-area
// TCP behaviour).
func (a *Analysis) TCPBreakdown() []TCPBreakdownRow {
	t := a.mustTraffic()
	order := []workload.Category{workload.PL, workload.BB, workload.DU}
	out := make([]TCPBreakdownRow, 0, len(order))
	for _, cat := range order {
		tk := t.tcpKindByCat[cat]
		var total int64
		if tk != nil {
			total = tk[httpsim.NoConnection] + tk[httpsim.NoResponse] + tk[httpsim.PartialResponse]
		}
		row := TCPBreakdownRow{Category: cat, FailureCount: total}
		if total > 0 {
			row.NoConnection = float64(tk[httpsim.NoConnection]) / float64(total)
			row.NoResponse = float64(tk[httpsim.NoResponse]) / float64(total)
			row.Partial = float64(tk[httpsim.PartialResponse]) / float64(total)
		}
		out = append(out, row)
	}
	return out
}

// LossCorrelation computes the Pearson correlation between per-client
// packet loss rate (retransmissions over data packets) and per-client
// transaction failure rate — the paper reports a weak 0.19
// (Section 4.1.3).
func (a *Analysis) LossCorrelation() (float64, error) {
	t := a.mustTraffic()
	g := a.mustGrids()
	totals := rowTotals(&g.client, a.Hours, a.nClients)
	var loss, fail []float64
	for c := 0; c < a.nClients; c++ {
		pkts := t.clientPkts.val(int32(c))
		if pkts == 0 {
			continue
		}
		tot := totals[c]
		if tot.Txns == 0 {
			continue
		}
		loss = append(loss, float64(t.clientRetrans.val(int32(c)))/float64(pkts))
		fail = append(fail, float64(tot.FailTxns)/float64(tot.Txns))
	}
	return stats.Pearson(loss, fail)
}
