package core

import "fmt"

// StateMode selects the memory representation backing the state-bearing
// analyzer passes. The paper's fixed 134x80 roster fits comfortably in
// dense flat arrays, and that layout is kept byte-identical for
// reproduction runs; internet-scale rosters (ROADMAP item 1's generated
// mega-fleets) would need clients x sites and clients x hours arrays
// that run to gigabytes, so above a documented cell budget the passes
// switch to sparse hash-backed grids sized by the traffic actually
// observed rather than by roster geometry.
type StateMode uint8

// State modes.
const (
	// StateAuto picks StateDense below DenseCellBudget cells per grid
	// and StateSparse above it. The default everywhere.
	StateAuto StateMode = iota
	// StateDense backs every grid with a flat array indexed by roster
	// geometry — O(1) cell access, zero per-cell overhead, memory
	// proportional to clients x sites x hours whether or not traffic
	// touches a cell. The paper-scale representation.
	StateDense
	// StateSparse backs every grid with a hash map holding only
	// touched cells — memory proportional to observed traffic, with
	// ~6x per-cell overhead. Chosen when roster geometry outgrows the
	// dense budget and most cells would stay empty (the realistic
	// mega-roster regime: most clients idle most hours).
	StateSparse
)

// DenseCellBudget is the auto-selection threshold: the largest
// per-grid cell count (the max of clients x bins, sites x bins,
// clients x sites, and replicas x bins) the dense backend is allowed
// before StateAuto switches to sparse. 16M cells caps the largest
// single dense grid near 256 MB (conn cells are 12 bytes, pair cells
// 16); the paper's 134 x 80 x 744 geometry peaks at ~100k cells, four
// orders of magnitude under the line, so reproduction runs always
// resolve dense.
const DenseCellBudget = 16 << 20

func (m StateMode) String() string {
	switch m {
	case StateAuto:
		return "auto"
	case StateDense:
		return "dense"
	case StateSparse:
		return "sparse"
	default:
		return fmt.Sprintf("StateMode(%d)", uint8(m))
	}
}

// ParseStateMode resolves a -state flag value.
func ParseStateMode(s string) (StateMode, error) {
	switch s {
	case "", "auto":
		return StateAuto, nil
	case "dense":
		return StateDense, nil
	case "sparse":
		return StateSparse, nil
	default:
		return StateAuto, fmt.Errorf("core: unknown state mode %q (want auto, dense, or sparse)", s)
	}
}

// resolveState turns StateAuto into a concrete backend choice from the
// roster geometry; explicit modes pass through.
func resolveState(mode StateMode, nClients, nSites, nReplicas, bins int) StateMode {
	if mode != StateAuto {
		return mode
	}
	maxCells := max(nClients*bins, nSites*bins, nClients*nSites, nReplicas*bins)
	if maxCells > DenseCellBudget {
		return StateSparse
	}
	return StateDense
}

// State reports the resolved representation backing this accumulator
// (never StateAuto).
func (a *Analysis) State() StateMode { return a.state }

// StateCells reports the number of materialized grid/counter cells
// across the selected passes: the full roster geometry in dense mode,
// the traffic-touched cell count in sparse mode. Deterministic for a
// merged accumulator (shard merges materialize the union of the
// shards' touched cells), so it is safe to expose as an obs gauge.
func (a *Analysis) StateCells() int64 {
	var n int64
	if a.grids != nil {
		n += int64(a.grids.client.touched() + a.grids.server.touched())
	}
	if a.conns != nil {
		n += int64(a.conns.client.touched() + a.conns.server.touched())
	}
	if a.pairs != nil {
		n += int64(a.pairs.cells.touched())
	}
	if a.replicas != nil {
		n += int64(a.replicas.replicaHours.touched())
	}
	if a.traffic != nil {
		n += int64(a.traffic.clientPkts.touched() + a.traffic.clientRetrans.touched())
	}
	return n
}
