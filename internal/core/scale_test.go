package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"webfail/internal/httpsim"
	"webfail/internal/measure"
	"webfail/internal/obs"
	"webfail/internal/scenario"
	"webfail/internal/simnet"
	"webfail/internal/workload"
)

// megaVisit streams a realistically sparse internet-scale workload:
// each client is active on a handful of sites during a handful of
// hours (most clients idle most hours — the regime the sparse backend
// is built for), with per-client fault windows and a few blocked pairs
// so the downstream artifacts have structure to find.
func megaVisit(topo *workload.Topology, hours int64, perClient int, seed int64, visit func(*measure.Record)) {
	rng := rand.New(rand.NewSource(seed))
	nSites := len(topo.Websites)
	var r measure.Record
	for c := range topo.Clients {
		// Per-client activity footprint: 8 sites, 6 hours.
		sites := make([]int, 8)
		for i := range sites {
			sites[i] = rng.Intn(nSites)
		}
		activeHours := make([]int64, 6)
		for i := range activeHours {
			activeHours[i] = int64(rng.Intn(int(hours)))
		}
		badHour := activeHours[0] // this client's fault window
		for i := 0; i < perClient; i++ {
			s := sites[rng.Intn(len(sites))]
			hour := activeHours[rng.Intn(len(activeHours))]
			p := 0.03
			if c%11 == 0 && hour == badHour {
				p = 0.9
			}
			if c%97 == 0 && s == sites[0] {
				p = 1 // blocked pair
			}
			fail := rng.Float64() < p
			r = measure.Record{
				ClientIdx: int32(c),
				SiteIdx:   int32(s),
				At:        simnet.FromHours(hour).Add(time.Duration(rng.Intn(3600)) * time.Second),
				Category:  topo.Clients[c].Category,
				Conns:     1,
			}
			if fail {
				r.Stage = httpsim.StageTCP
				r.FailKind = httpsim.NoConnection
				r.Conns = 3
			} else {
				r.StatusCode = 200
				r.Bytes = 10240
				r.DataPkts = int16(8 + rng.Intn(12))
				r.Retransmits = int16(rng.Intn(2))
			}
			visit(&r)
		}
	}
}

// retainedMB reports the GC-settled heap growth attributable to build's
// return value — the retained-state measure EXPERIMENTS.md records for
// the dense/sparse comparison (a lower bound on peak RSS that isolates
// the analyzer state from test-harness allocations).
func retainedMB(build func() *Analysis) (*Analysis, float64) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	a := build()
	runtime.GC()
	runtime.ReadMemStats(&after)
	return a, float64(after.HeapAlloc-before.HeapAlloc) / (1 << 20)
}

// denseStateMB estimates the dense backend's grid bytes for a
// geometry, from the per-cell sizes of each pass's cell type — the
// extrapolation used where allocating the dense arrays outright would
// swamp the test host.
func denseStateMB(topo *workload.Topology, hours int) float64 {
	nC, nS := len(topo.Clients), len(topo.Websites)
	nR := 0
	for j := range topo.Websites {
		nR += len(topo.Websites[j].ReplicaAddrs)
	}
	var bytes int64
	bytes += int64(nC) * int64(nS) * 16       // pairs: pairCell
	bytes += int64(nC+nS) * int64(hours) * 8  // grids: gridCell
	bytes += int64(nC+nS) * int64(hours) * 12 // conns: connCell
	bytes += int64(nR) * int64(hours) * 8     // replicas: gridCell
	bytes += 2 * int64(nC) * 8                // traffic counter vecs
	return float64(bytes) / (1 << 20)
}

// runArtifacts drives the full analyze path over an accumulator — the
// same artifact set `-artifacts all` renders — so the memory and
// throughput numbers cover analysis, not just ingest.
func runArtifacts(tb testing.TB, a *Analysis) {
	tb.Helper()
	pairs := a.PermanentPairs(0.9)
	a.TopFailingPairs(0.9, 8)
	a.PermanentPairShare(pairs)
	a.EpisodeRateCDFs()
	a.MedianFailureRates()
	at := a.Attribute(0.5, pairs)
	a.ServerEpisodeStats(at)
	a.ServersWithEpisodes(at)
	a.CoLocatedSimilarityTop(at, 8)
	a.ReplicaAnalysis(at, a.ReplicaCensusDefault())
	a.ClientServerSpecific(at)
	if _, err := a.LossCorrelation(); err != nil {
		tb.Fatalf("loss correlation: %v", err)
	}
}

// TestMegaRosterMemory is the capacity acceptance check: a 100k-client
// x 1k-site synthetic roster must complete the full analyze artifact
// path in well under 2 GB of retained state with the sparse backend,
// while the dense layout for the same geometry extrapolates to >= 5x
// the sparse footprint. The 10k roster is measured in BOTH backends so
// the extrapolation is anchored to a directly measured dense number.
func TestMegaRosterMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("mega-roster memory check skipped in -short mode")
	}
	const (
		hours     = 168 // one week of hourly bins
		perClient = 40
	)
	end := simnet.FromHours(hours)
	build := func(topo *workload.Topology, st StateMode) func() *Analysis {
		return func() *Analysis {
			a := NewAnalysisOpts(topo, 0, end, Options{State: st})
			megaVisit(topo, hours, perClient, 1, a.Add)
			return a
		}
	}

	// 10k roster: measure both backends directly.
	topo10k := scenario.SyntheticTopology(10_000, 1_000)
	sparse10k, sparse10kMB := retainedMB(build(topo10k, StateSparse))
	runArtifacts(t, sparse10k)
	dense10k, dense10kMB := retainedMB(build(topo10k, StateDense))
	runArtifacts(t, dense10k)
	t.Logf("10k x 1k x %dh: sparse %.0f MB (%d cells), dense %.0f MB (est %.0f MB)",
		hours, sparse10kMB, sparse10k.StateCells(), dense10kMB, denseStateMB(topo10k, hours))
	if dense10kMB < 4*sparse10kMB {
		t.Errorf("10k roster: dense %.0f MB is under 4x sparse %.0f MB — the sparse backend is not earning its keep", dense10kMB, sparse10kMB)
	}

	// 100k roster: sparse measured, dense extrapolated (the dense pair
	// grid alone is 100k x 1k x 16 B = 1.6 GB).
	topo100k := scenario.SyntheticTopology(100_000, 1_000)
	a, sparseMB := retainedMB(build(topo100k, StateSparse))
	runArtifacts(t, a)
	denseMB := denseStateMB(topo100k, hours)
	reg := obs.NewRegistry()
	reg.Gauge("core_state_cells{state=\"" + a.State().String() + "\"}").Set(float64(a.StateCells()))
	reg.Gauge("core_state_retained_mb").Set(sparseMB)
	t.Logf("100k x 1k x %dh: sparse %.0f MB retained (%d cells, %d txns), dense extrapolates to %.0f MB (%.1fx)",
		hours, sparseMB, a.StateCells(), a.TotalTxns(), denseMB, denseMB/sparseMB)
	if sparseMB > 2048 {
		t.Errorf("100k-client sparse analyze retained %.0f MB, want < 2048", sparseMB)
	}
	if denseMB < 5*sparseMB {
		t.Errorf("dense extrapolation %.0f MB is under 5x sparse %.0f MB", denseMB, sparseMB)
	}
	// Auto must resolve sparse at this geometry without being asked.
	auto := NewAnalysisOpts(topo100k, 0, end, Options{})
	if auto.State() != StateSparse {
		t.Errorf("auto state at 100k x 1k = %v, want sparse", auto.State())
	}
}

// benchAnalyze is the ingest+analyze benchmark body shared by the
// dense and sparse variants.
func benchAnalyze(b *testing.B, nClients, nSites int, st StateMode) {
	const (
		hours     = 168
		perClient = 40
	)
	topo := scenario.SyntheticTopology(nClients, nSites)
	end := simnet.FromHours(hours)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := NewAnalysisOpts(topo, 0, end, Options{State: st})
		megaVisit(topo, hours, perClient, 1, a.Add)
		runArtifacts(b, a)
		b.ReportMetric(float64(a.TotalTxns()), "txns/op")
	}
}

func BenchmarkAnalyzeSparse(b *testing.B) {
	for _, n := range []int{10_000, 100_000} {
		b.Run(fmt.Sprintf("clients=%d", n), func(b *testing.B) {
			benchAnalyze(b, n, 1_000, StateSparse)
		})
	}
}

func BenchmarkAnalyzeDense(b *testing.B) {
	b.Run("clients=10000", func(b *testing.B) {
		benchAnalyze(b, 10_000, 1_000, StateDense)
	})
}
