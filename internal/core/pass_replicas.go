package core

import (
	"fmt"
	"net/netip"

	"webfail/internal/measure"
	"webfail/internal/workload"
)

// replicasPass accumulates per-replica traffic for the Section 4.5
// census (the 10%-of-connections qualification rule) and the
// total/partial failure classification. Replica IPs are indexed densely
// in topology order so two passes over the same topology always agree.
type replicasPass struct {
	hours int

	replicaIdx   map[netip.Addr]int
	replicaAddrs []netip.Addr
	replicaSite  []int32    // replica -> site index
	replicaHours []gridCell // [replica*hours + h]
	replicaConns []int64    // total connections per replica (for the 10% rule)
	siteConns    []int64    // total connections per site
}

func newReplicasPass(topo *workload.Topology, hours int) *replicasPass {
	p := &replicasPass{
		hours:      hours,
		replicaIdx: make(map[netip.Addr]int),
		siteConns:  make([]int64, len(topo.Websites)),
	}
	for j := range topo.Websites {
		for _, ra := range topo.Websites[j].ReplicaAddrs {
			p.replicaIdx[ra] = len(p.replicaAddrs)
			p.replicaAddrs = append(p.replicaAddrs, ra)
			p.replicaSite = append(p.replicaSite, int32(j))
		}
	}
	p.replicaHours = make([]gridCell, len(p.replicaAddrs)*hours)
	p.replicaConns = make([]int64, len(p.replicaAddrs))
	return p
}

func (p *replicasPass) Name() PassName { return PassReplicas }
func (p *replicasPass) Artifacts() []string {
	return append([]string(nil), passArtifacts[PassReplicas]...)
}

func (p *replicasPass) Consume(r *measure.Record, hour int) { p.consume(r, hour) }

func (p *replicasPass) consume(r *measure.Record, hour int) {
	p.siteConns[r.SiteIdx] += int64(r.Conns)
	ri, ok := p.replicaIdx[r.ReplicaIP]
	if !ok {
		return
	}
	cell := &p.replicaHours[ri*p.hours+hour]
	cell.Txns++
	if r.Failed() {
		cell.FailTxns++
	}
	p.replicaConns[ri] += int64(r.Conns)
}

func (p *replicasPass) Merge(other Pass) error {
	q, ok := other.(*replicasPass)
	if !ok {
		return mergeTypeError(p, other)
	}
	if len(p.replicaAddrs) != len(q.replicaAddrs) {
		return fmt.Errorf("core: merge of mismatched replica indexes (%d vs %d)",
			len(p.replicaAddrs), len(q.replicaAddrs))
	}
	mergeGridCells(p.replicaHours, q.replicaHours)
	for i, v := range q.replicaConns {
		p.replicaConns[i] += v
	}
	for i, v := range q.siteConns {
		p.siteConns[i] += v
	}
	return nil
}
