package core

import (
	"fmt"
	"net/netip"

	"webfail/internal/measure"
	"webfail/internal/workload"
)

// replicasPass accumulates per-replica traffic for the Section 4.5
// census (the 10%-of-connections qualification rule) and the
// total/partial failure classification. Replica IPs are indexed densely
// in topology order so two passes over the same topology always agree.
// Only the replica-hour grid is capacity-aware; the per-replica and
// per-site connection totals are O(roster) int64s in either mode.
type replicasPass struct {
	hours int

	replicaIdx    map[netip.Addr]int
	replicaAddrs  []netip.Addr
	replicaSite   []int32        // replica -> site index
	replicaBySite [][]int32      // site -> replica indexes, topology order
	replicaHours  grid[gridCell] // [replica*hours + h]
	replicaConns  []int64        // total connections per replica (for the 10% rule)
	siteConns     []int64        // total connections per site
}

func newReplicasPass(topo *workload.Topology, hours int, st StateMode) *replicasPass {
	p := &replicasPass{
		hours:         hours,
		replicaIdx:    make(map[netip.Addr]int),
		replicaBySite: make([][]int32, len(topo.Websites)),
		siteConns:     make([]int64, len(topo.Websites)),
	}
	for j := range topo.Websites {
		for _, ra := range topo.Websites[j].ReplicaAddrs {
			ri := len(p.replicaAddrs)
			p.replicaIdx[ra] = ri
			p.replicaAddrs = append(p.replicaAddrs, ra)
			p.replicaSite = append(p.replicaSite, int32(j))
			p.replicaBySite[j] = append(p.replicaBySite[j], int32(ri))
		}
	}
	p.replicaHours = newGrid[gridCell](len(p.replicaAddrs)*hours, st)
	p.replicaConns = make([]int64, len(p.replicaAddrs))
	return p
}

func (p *replicasPass) Name() PassName { return PassReplicas }
func (p *replicasPass) Artifacts() []string {
	return append([]string(nil), passArtifacts[PassReplicas]...)
}

func (p *replicasPass) Consume(r *measure.Record, hour int) { p.consume(r, hour) }

func (p *replicasPass) consume(r *measure.Record, hour int) {
	p.siteConns[r.SiteIdx] += int64(r.Conns)
	ri, ok := p.replicaIdx[r.ReplicaIP]
	if !ok {
		return
	}
	cell := p.replicaHours.mut(ri*p.hours + hour)
	cell.Txns++
	if r.Failed() {
		cell.FailTxns++
	}
	p.replicaConns[ri] += int64(r.Conns)
}

func (p *replicasPass) Merge(other Pass) error {
	q, ok := other.(*replicasPass)
	if !ok {
		return mergeTypeError(p, other)
	}
	if len(p.replicaAddrs) != len(q.replicaAddrs) {
		return fmt.Errorf("core: merge of mismatched replica indexes (%d vs %d)",
			len(p.replicaAddrs), len(q.replicaAddrs))
	}
	if err := mergeGrid(&p.replicaHours, &q.replicaHours, addGridCell); err != nil {
		return err
	}
	for i, v := range q.replicaConns {
		p.replicaConns[i] += v
	}
	for i, v := range q.siteConns {
		p.siteConns[i] += v
	}
	return nil
}
