package core

import (
	"webfail/internal/httpsim"
	"webfail/internal/measure"
)

// enumCounts is a flat counter bank indexed by a uint8 enum value
// (Category, Stage, DNSOutcome, ConnFailKind). The full 256-slot span
// means any byte a decoded record carries is a valid index — the hot
// ingest path is pure array arithmetic with no hashing, no bounds
// checks, and no way to panic on unexpected enum values.
type enumCounts [256]int64

func (c *enumCounts) addAll(src *enumCounts) {
	for i, v := range src {
		if v != 0 {
			c[i] += v
		}
	}
}

// trafficPass accumulates the per-category traffic breakdowns (Table 3,
// Figure 1), the DNS and TCP failure sub-classes (Table 4, Figures 2–3),
// and per-client loss accounting (Section 4.1.3). Counters are flat
// enum-indexed arrays rather than maps: ingest touches several of them
// per record, and at dataset-replay rates the map hashing dominated the
// whole pass.
type trafficPass struct {
	// Category totals (Table 3).
	catTxns, catFails   enumCounts
	catConns, catFailCo enumCounts

	// Failure-stage counts per category (Figure 1); banks allocate
	// lazily on a category's first failure.
	stageCounts [256]*enumCounts

	// DNS failure sub-classes per category (Table 4) and per website
	// (Figure 2).
	dnsClassByCat  [256]*enumCounts
	dnsClassBySite []*enumCounts

	// TCP failure kinds per category (Figure 3).
	tcpKindByCat [256]*enumCounts

	// Per-client loss accounting (Section 4.1.3). Capacity-aware: flat
	// arrays at paper scale, hash-backed for mega-rosters.
	clientPkts, clientRetrans counterVec
}

func newTrafficPass(nClients, nSites int, st StateMode) *trafficPass {
	return &trafficPass{
		dnsClassBySite: make([]*enumCounts, nSites),
		clientPkts:     newCounterVec(nClients, st),
		clientRetrans:  newCounterVec(nClients, st),
	}
}

func (p *trafficPass) Name() PassName { return PassTraffic }
func (p *trafficPass) Artifacts() []string {
	return append([]string(nil), passArtifacts[PassTraffic]...)
}

func (p *trafficPass) Consume(r *measure.Record, _ int) { p.consume(r) }

func (p *trafficPass) consume(r *measure.Record) {
	cat := r.Category
	p.catTxns[cat]++
	p.catConns[cat] += int64(r.Conns)
	p.catFailCo[cat] += int64(r.FailedConns())
	p.clientPkts.add(r.ClientIdx, int64(r.DataPkts))
	p.clientRetrans.add(r.ClientIdx, int64(r.Retransmits))

	if !r.Failed() {
		return
	}
	p.catFails[cat]++

	sc := p.stageCounts[cat]
	if sc == nil {
		sc = new(enumCounts)
		p.stageCounts[cat] = sc
	}
	sc[r.Stage]++

	switch r.Stage {
	case httpsim.StageDNS:
		dc := p.dnsClassByCat[cat]
		if dc == nil {
			dc = new(enumCounts)
			p.dnsClassByCat[cat] = dc
		}
		dc[r.DNS]++
		ds := p.dnsClassBySite[r.SiteIdx]
		if ds == nil {
			ds = new(enumCounts)
			p.dnsClassBySite[r.SiteIdx] = ds
		}
		ds[r.DNS]++
	case httpsim.StageTCP:
		tk := p.tcpKindByCat[cat]
		if tk == nil {
			tk = new(enumCounts)
			p.tcpKindByCat[cat] = tk
		}
		tk[r.FailKind]++
	}
}

// mergeBanks folds src's lazily allocated counter banks into dst.
func mergeBanks(dst, src *[256]*enumCounts) {
	for i, s := range src {
		if s == nil {
			continue
		}
		d := dst[i]
		if d == nil {
			d = new(enumCounts)
			dst[i] = d
		}
		d.addAll(s)
	}
}

func (p *trafficPass) Merge(other Pass) error {
	q, ok := other.(*trafficPass)
	if !ok {
		return mergeTypeError(p, other)
	}
	p.catTxns.addAll(&q.catTxns)
	p.catFails.addAll(&q.catFails)
	p.catConns.addAll(&q.catConns)
	p.catFailCo.addAll(&q.catFailCo)
	mergeBanks(&p.stageCounts, &q.stageCounts)
	mergeBanks(&p.dnsClassByCat, &q.dnsClassByCat)
	mergeBanks(&p.tcpKindByCat, &q.tcpKindByCat)
	for si, src := range q.dnsClassBySite {
		if src == nil {
			continue
		}
		dst := p.dnsClassBySite[si]
		if dst == nil {
			dst = new(enumCounts)
			p.dnsClassBySite[si] = dst
		}
		dst.addAll(src)
	}
	if err := mergeCounterVec(&p.clientPkts, &q.clientPkts); err != nil {
		return err
	}
	return mergeCounterVec(&p.clientRetrans, &q.clientRetrans)
}
