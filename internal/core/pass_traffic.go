package core

import (
	"webfail/internal/httpsim"
	"webfail/internal/measure"
	"webfail/internal/workload"
)

// trafficPass accumulates the per-category traffic breakdowns (Table 3,
// Figure 1), the DNS and TCP failure sub-class maps (Table 4,
// Figures 2–3), and per-client loss accounting (Section 4.1.3).
type trafficPass struct {
	// Category totals (Table 3).
	catTxns, catFails   map[workload.Category]int64
	catConns, catFailCo map[workload.Category]int64

	// Failure-stage counts per category (Figure 1).
	stageCounts map[workload.Category]map[httpsim.Stage]int64

	// DNS failure sub-classes per category (Table 4) and per website
	// (Figure 2).
	dnsClassByCat  map[workload.Category]map[measure.DNSOutcome]int64
	dnsClassBySite []map[measure.DNSOutcome]int64

	// TCP failure kinds per category (Figure 3).
	tcpKindByCat map[workload.Category]map[httpsim.ConnFailKind]int64

	// Per-client loss accounting (Section 4.1.3). Capacity-aware: flat
	// arrays at paper scale, hash-backed for mega-rosters.
	clientPkts, clientRetrans counterVec
}

func newTrafficPass(nClients, nSites int, st StateMode) *trafficPass {
	return &trafficPass{
		catTxns:        make(map[workload.Category]int64),
		catFails:       make(map[workload.Category]int64),
		catConns:       make(map[workload.Category]int64),
		catFailCo:      make(map[workload.Category]int64),
		stageCounts:    make(map[workload.Category]map[httpsim.Stage]int64),
		dnsClassByCat:  make(map[workload.Category]map[measure.DNSOutcome]int64),
		dnsClassBySite: make([]map[measure.DNSOutcome]int64, nSites),
		tcpKindByCat:   make(map[workload.Category]map[httpsim.ConnFailKind]int64),
		clientPkts:     newCounterVec(nClients, st),
		clientRetrans:  newCounterVec(nClients, st),
	}
}

func (p *trafficPass) Name() PassName { return PassTraffic }
func (p *trafficPass) Artifacts() []string {
	return append([]string(nil), passArtifacts[PassTraffic]...)
}

func (p *trafficPass) Consume(r *measure.Record, _ int) { p.consume(r) }

func (p *trafficPass) consume(r *measure.Record) {
	p.catTxns[r.Category]++
	p.catConns[r.Category] += int64(r.Conns)
	p.catFailCo[r.Category] += int64(r.FailedConns())
	p.clientPkts.add(r.ClientIdx, int64(r.DataPkts))
	p.clientRetrans.add(r.ClientIdx, int64(r.Retransmits))

	if !r.Failed() {
		return
	}
	p.catFails[r.Category]++

	sc := p.stageCounts[r.Category]
	if sc == nil {
		sc = make(map[httpsim.Stage]int64)
		p.stageCounts[r.Category] = sc
	}
	sc[r.Stage]++

	switch r.Stage {
	case httpsim.StageDNS:
		dc := p.dnsClassByCat[r.Category]
		if dc == nil {
			dc = make(map[measure.DNSOutcome]int64)
			p.dnsClassByCat[r.Category] = dc
		}
		dc[r.DNS]++
		ds := p.dnsClassBySite[r.SiteIdx]
		if ds == nil {
			ds = make(map[measure.DNSOutcome]int64)
			p.dnsClassBySite[r.SiteIdx] = ds
		}
		ds[r.DNS]++
	case httpsim.StageTCP:
		tk := p.tcpKindByCat[r.Category]
		if tk == nil {
			tk = make(map[httpsim.ConnFailKind]int64)
			p.tcpKindByCat[r.Category] = tk
		}
		tk[r.FailKind]++
	}
}

func (p *trafficPass) Merge(other Pass) error {
	q, ok := other.(*trafficPass)
	if !ok {
		return mergeTypeError(p, other)
	}
	mergeCatCounts(p.catTxns, q.catTxns)
	mergeCatCounts(p.catFails, q.catFails)
	mergeCatCounts(p.catConns, q.catConns)
	mergeCatCounts(p.catFailCo, q.catFailCo)
	for cat, src := range q.stageCounts {
		dst := p.stageCounts[cat]
		if dst == nil {
			dst = make(map[httpsim.Stage]int64, len(src))
			p.stageCounts[cat] = dst
		}
		for k, v := range src {
			dst[k] += v
		}
	}
	for cat, src := range q.dnsClassByCat {
		dst := p.dnsClassByCat[cat]
		if dst == nil {
			dst = make(map[measure.DNSOutcome]int64, len(src))
			p.dnsClassByCat[cat] = dst
		}
		for k, v := range src {
			dst[k] += v
		}
	}
	for cat, src := range q.tcpKindByCat {
		dst := p.tcpKindByCat[cat]
		if dst == nil {
			dst = make(map[httpsim.ConnFailKind]int64, len(src))
			p.tcpKindByCat[cat] = dst
		}
		for k, v := range src {
			dst[k] += v
		}
	}
	for si, src := range q.dnsClassBySite {
		if src == nil {
			continue
		}
		dst := p.dnsClassBySite[si]
		if dst == nil {
			dst = make(map[measure.DNSOutcome]int64, len(src))
			p.dnsClassBySite[si] = dst
		}
		for k, v := range src {
			dst[k] += v
		}
	}
	if err := mergeCounterVec(&p.clientPkts, &q.clientPkts); err != nil {
		return err
	}
	return mergeCounterVec(&p.clientRetrans, &q.clientRetrans)
}

func mergeCatCounts(dst, src map[workload.Category]int64) {
	for k, v := range src {
		dst[k] += v
	}
}
