package core

import (
	"fmt"

	"webfail/internal/httpsim"
	"webfail/internal/measure"
	"webfail/internal/workload"
)

// Merge folds other's accumulated state into a. Both accumulators must
// have been built over the same topology and window (same client/site
// rosters, bin duration, and hour count); Merge errors otherwise and
// leaves a unchanged.
//
// Every counter merges by addition, which is order-independent, so any
// merge order yields the same dense grids, pair counts, and category
// totals. The two order-sensitive pieces are handled as follows:
//
//   - Failure records append in call order. Callers recovering a serial
//     run's exact output (measure.RunParallel feeding one accumulator per
//     shard) must merge shards in shard-index order — the serial record
//     stream is client-major, and shards are contiguous client ranges.
//   - Streak fields (longest consecutive-failure run per client-hour) are
//     exact only when the two accumulators saw disjoint client sets, as
//     RunParallel shards guarantee; merging overlapping client traffic
//     would need the record streams interleaved, which accumulators do
//     not retain.
func (a *Analysis) Merge(other *Analysis) error {
	switch {
	case other == nil:
		return nil
	case a.nClients != other.nClients || a.nSites != other.nSites:
		return fmt.Errorf("core: merge of mismatched rosters (%dx%d vs %dx%d)",
			a.nClients, a.nSites, other.nClients, other.nSites)
	case a.Hours != other.Hours || a.binNS != other.binNS || a.StartHour != other.StartHour:
		return fmt.Errorf("core: merge of mismatched windows (%d bins of %dns from %d vs %d bins of %dns from %d)",
			a.Hours, a.binNS, a.StartHour, other.Hours, other.binNS, other.StartHour)
	case len(a.replicaAddrs) != len(other.replicaAddrs):
		return fmt.Errorf("core: merge of mismatched replica indexes (%d vs %d)",
			len(a.replicaAddrs), len(other.replicaAddrs))
	}

	mergeCells(a.clientHours, other.clientHours)
	mergeCells(a.serverHours, other.serverHours)
	mergeCells(a.replicaHours, other.replicaHours)
	for i, v := range other.replicaConns {
		a.replicaConns[i] += v
	}
	for i, v := range other.siteConns {
		a.siteConns[i] += v
	}
	for i, v := range other.pairTxns {
		a.pairTxns[i] += v
	}
	for i, v := range other.pairFails {
		a.pairFails[i] += v
	}
	for i, v := range other.clientPkts {
		a.clientPkts[i] += v
	}
	for i, v := range other.clientRetrans {
		a.clientRetrans[i] += v
	}

	mergeCatCounts(a.catTxns, other.catTxns)
	mergeCatCounts(a.catFails, other.catFails)
	mergeCatCounts(a.catConns, other.catConns)
	mergeCatCounts(a.catFailCo, other.catFailCo)
	for cat, src := range other.stageCounts {
		dst := a.stageCounts[cat]
		if dst == nil {
			dst = make(map[httpsim.Stage]int64, len(src))
			a.stageCounts[cat] = dst
		}
		for k, v := range src {
			dst[k] += v
		}
	}
	for cat, src := range other.dnsClassByCat {
		dst := a.dnsClassByCat[cat]
		if dst == nil {
			dst = make(map[measure.DNSOutcome]int64, len(src))
			a.dnsClassByCat[cat] = dst
		}
		for k, v := range src {
			dst[k] += v
		}
	}
	for cat, src := range other.tcpKindByCat {
		dst := a.tcpKindByCat[cat]
		if dst == nil {
			dst = make(map[httpsim.ConnFailKind]int64, len(src))
			a.tcpKindByCat[cat] = dst
		}
		for k, v := range src {
			dst[k] += v
		}
	}
	for si, src := range other.dnsClassBySite {
		if src == nil {
			continue
		}
		dst := a.dnsClassBySite[si]
		if dst == nil {
			dst = make(map[measure.DNSOutcome]int64, len(src))
			a.dnsClassBySite[si] = dst
		}
		for k, v := range src {
			dst[k] += v
		}
	}

	a.Failures = append(a.Failures, other.Failures...)
	a.TotalTxns += other.TotalTxns
	a.TotalFails += other.TotalFails
	return nil
}

func mergeCells(dst, src []entityHour) {
	for i := range src {
		d := &dst[i]
		s := &src[i]
		d.Txns += s.Txns
		d.FailTxns += s.FailTxns
		d.Conns += s.Conns
		d.FailConns += s.FailConns
		d.streakCur += s.streakCur
		if s.StreakMax > d.StreakMax {
			d.StreakMax = s.StreakMax
		}
	}
}

func mergeCatCounts(dst, src map[workload.Category]int64) {
	for k, v := range src {
		dst[k] += v
	}
}
