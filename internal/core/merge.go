package core

import (
	"fmt"
	"slices"
)

// Merge folds other's accumulated state into a. Both accumulators must
// have been built over the same topology and window (same client/site
// rosters, bin duration, and hour count) and with the same analyzer
// pass set; Merge errors otherwise and leaves a unchanged.
//
// Every counter merges by addition, which is order-independent, so any
// merge order yields the same dense grids, pair counts, and category
// totals. The two order-sensitive pieces are handled as follows:
//
//   - Failure records append in call order. Callers recovering a serial
//     run's exact output (measure.RunParallel feeding one accumulator per
//     shard) must merge shards in shard-index order — the serial record
//     stream is client-major, and shards are contiguous client ranges.
//   - Streak fields (longest consecutive-failure run per client-hour) are
//     exact only when the two accumulators saw disjoint client sets, as
//     RunParallel shards guarantee; merging overlapping client traffic
//     would need the record streams interleaved, which accumulators do
//     not retain.
func (a *Analysis) Merge(other *Analysis) error {
	switch {
	case other == nil:
		return nil
	case a.nClients != other.nClients || a.nSites != other.nSites:
		return fmt.Errorf("core: merge of mismatched rosters (%dx%d vs %dx%d)",
			a.nClients, a.nSites, other.nClients, other.nSites)
	case a.Hours != other.Hours || a.binNS != other.binNS || a.StartHour != other.StartHour:
		return fmt.Errorf("core: merge of mismatched windows (%d bins of %dns from %d vs %d bins of %dns from %d)",
			a.Hours, a.binNS, a.StartHour, other.Hours, other.binNS, other.StartHour)
	case !slices.Equal(a.Passes(), other.Passes()):
		return fmt.Errorf("core: merge of mismatched pass sets (%v vs %v)",
			a.Passes(), other.Passes())
	case a.state != other.state:
		// Both sides resolved StateAuto from the same roster geometry, so
		// this only fires when callers force different explicit modes.
		return fmt.Errorf("core: merge of mismatched state modes (%v vs %v)", a.state, other.state)
	case a.replicas != nil && len(a.replicas.replicaAddrs) != len(other.replicas.replicaAddrs):
		// Checked up front (not just in replicasPass.Merge) so a failed
		// merge leaves a unchanged.
		return fmt.Errorf("core: merge of mismatched replica indexes (%d vs %d)",
			len(a.replicas.replicaAddrs), len(other.replicas.replicaAddrs))
	}
	// Pass sets are equal and in canonical order, so the active slices
	// pair up index-wise.
	for i, p := range a.active {
		if err := p.Merge(other.active[i]); err != nil {
			return err
		}
	}
	return nil
}
