package core

import (
	"webfail/internal/faults"
	"webfail/internal/simnet"
	"webfail/internal/workload"
)

// GroundTruthReport quantifies how well the blame-attribution procedure
// recovered the injected fault schedule — the direct validation the
// original study could not perform (Section 4.4.6 resorts to indirect
// evidence; here the scenario timeline IS the ground truth).
//
// For every classified TCP failure we ask what the injected cause was at
// that instant: a server-side fault (website outage/overload, replica
// outage), a client-side fault (site/client connectivity, WAN outage on
// the client prefix, client-prefix BGP event), both, or none (a
// transient). Precision is the fraction of attributions whose ground
// truth agrees; recall is the fraction of ground-truth-X failures
// attributed X.
type GroundTruthReport struct {
	// Confusion[attributed][truth] counts classified failures.
	Confusion map[Blame]map[Blame]int64
	Total     int64

	ServerPrecision, ServerRecall float64
	ClientPrecision, ClientRecall float64
}

// ValidateAttribution joins an attribution with the scenario that
// generated the run. The transaction time is reconstructed from the bin
// index midpoint, which is exact enough because injected episodes are
// much longer than a bin.
func (a *Analysis) ValidateAttribution(at *Attribution, sc *workload.Scenario) *GroundTruthReport {
	rep := &GroundTruthReport{Confusion: map[Blame]map[Blame]int64{}}
	tl := sc.Timeline

	for _, tf := range at.Tags {
		c := &a.Topo.Clients[tf.Client]
		w := &a.Topo.Websites[tf.Site]
		// Bin midpoint as representative instant.
		atTime := binMid(a, int(tf.Hour))

		serverTruth := activeAnyKind(tl, faults.Entity("www:"+w.Host), atTime,
			faults.ServerOutage, faults.ServerOverload)
		if !serverTruth {
			for _, ra := range w.ReplicaAddrs {
				if _, ok := tl.Active(faults.Entity("replica:"+ra.String()), faults.ServerOutage, atTime); ok {
					serverTruth = true
					break
				}
			}
		}
		if !serverTruth {
			for _, p := range w.Prefixes {
				if activeAnyKind(tl, faults.Entity("prefix:"+p.String()), atTime, faults.BGPInstability, faults.PathOutage) {
					serverTruth = true
					break
				}
			}
		}

		clientTruth := activeAnyKind(tl, faults.Entity("site:"+c.Site), atTime,
			faults.ClientConnectivity, faults.LDNSOutage) ||
			activeAnyKind(tl, faults.Entity("client:"+c.Name), atTime, faults.ClientConnectivity) ||
			activeAnyKind(tl, faults.Entity("prefix:"+c.Prefix.String()), atTime,
				faults.BGPInstability, faults.PathOutage)

		var truth Blame
		switch {
		case serverTruth && clientTruth:
			truth = BlameBoth
		case serverTruth:
			truth = BlameServer
		case clientTruth:
			truth = BlameClient
		default:
			truth = BlameOther
		}
		if rep.Confusion[tf.Blame] == nil {
			rep.Confusion[tf.Blame] = map[Blame]int64{}
		}
		rep.Confusion[tf.Blame][truth]++
		rep.Total++
	}

	// Precision/recall treating "both" as agreeing with either side.
	sums := func(b Blame) (attributed, truthTotal, correct int64) {
		for attr, row := range rep.Confusion {
			for truth, n := range row {
				attrMatch := attr == b || attr == BlameBoth
				truthMatch := truth == b || truth == BlameBoth
				if attrMatch {
					attributed += n
					if truthMatch {
						correct += n
					}
				}
				if truthMatch {
					truthTotal += n
				}
			}
		}
		return
	}
	if attr, truthTotal, correct := sums(BlameServer); attr > 0 && truthTotal > 0 {
		rep.ServerPrecision = float64(correct) / float64(attr)
		rep.ServerRecall = recallOf(rep, BlameServer, truthTotal)
	}
	if attr, truthTotal, correct := sums(BlameClient); attr > 0 && truthTotal > 0 {
		rep.ClientPrecision = float64(correct) / float64(attr)
		rep.ClientRecall = recallOf(rep, BlameClient, truthTotal)
	}
	return rep
}

// recallOf counts ground-truth-b failures that were attributed b (or
// both), over all ground-truth-b failures.
func recallOf(rep *GroundTruthReport, b Blame, truthTotal int64) float64 {
	var correct int64
	for attr, row := range rep.Confusion {
		for truth, n := range row {
			if (truth == b || truth == BlameBoth) && (attr == b || attr == BlameBoth) {
				correct += n
			}
		}
	}
	if truthTotal == 0 {
		return 0
	}
	return float64(correct) / float64(truthTotal)
}

func activeAnyKind(tl *faults.Timeline, e faults.Entity, at simnet.Time, kinds ...faults.Kind) bool {
	for _, k := range kinds {
		if _, ok := tl.Active(e, k, at); ok {
			return true
		}
	}
	return false
}

// binMid returns the midpoint instant of window-relative bin h.
func binMid(a *Analysis, h int) simnet.Time {
	return simnet.Time((a.StartHour+int64(h))*a.binNS + a.binNS/2)
}

// DetectedPermanentBlocks cross-checks detected permanent pairs against
// the scenario's injected blocks, returning how many detected pairs were
// injected (true positives), how many injected blocks went undetected
// (false negatives), and how many detections have no injected block
// (false positives).
func (a *Analysis) DetectedPermanentBlocks(pairs []PermanentPair, sc *workload.Scenario, topo *workload.Topology) (tp, fn, fp int) {
	injected := map[[2]string]bool{}
	for _, p := range sc.PermanentClientPairs(topo) {
		injected[[2]string{p[0], p[1]}] = true
	}
	detected := map[[2]string]bool{}
	for _, p := range pairs {
		key := [2]string{topo.Clients[p.Client].Name, topo.Websites[p.Site].Host}
		detected[key] = true
		if injected[key] {
			tp++
		} else {
			fp++
		}
	}
	for key := range injected {
		if !detected[key] {
			fn++
		}
	}
	return tp, fn, fp
}
