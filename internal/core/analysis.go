// Package core implements the paper's primary contribution: the
// client-based characterization and cross-correlation analysis of
// end-to-end web access failures (Sections 2 and 4) —
//
//   - transaction failure classification and per-category breakdowns
//     (Table 3, Table 4, Figures 1–3);
//   - 1-hour failure episodes, the failure-rate CDFs and their knee
//     (Figure 4), and the blame-attribution procedure classifying failures
//     as server-side / client-side / both / other (Table 5);
//   - permanent client-server pair detection and exclusion (Section
//     4.4.2);
//   - server-side episode statistics, coalescing, and spread (Table 6);
//   - co-located client similarity (Tables 7–8);
//   - replica-level total/partial failure classification (Section 4.5);
//   - BGP instability correlation (Section 4.6, Figures 5–7);
//   - shared proxy-related failure isolation (Section 4.7, Table 9).
//
// The Analysis accumulator consumes measure.Records in one streaming
// pass; every analysis is a pure function over the accumulated state.
package core

import (
	"fmt"
	"net/netip"
	"time"

	"webfail/internal/httpsim"
	"webfail/internal/measure"
	"webfail/internal/simnet"
	"webfail/internal/workload"
)

// entityHour accumulates one client's or server's traffic within one
// 1-hour episode (Section 4.4.3 fixes the episode duration at one hour).
type entityHour struct {
	Txns      int32
	FailTxns  int32
	Conns     int32
	FailConns int32
	// Streak tracking: longest run of consecutive failed transactions
	// within the hour (Figure 5's third graph).
	streakCur int16
	StreakMax int16
}

// FailureRec is the compact retained form of a failed transaction, the
// input to the attribution pass.
type FailureRec struct {
	Client  int32
	Site    int32
	Hour    int32 // hour index relative to the analysis window
	Stage   httpsim.Stage
	DNS     measure.DNSOutcome
	Kind    httpsim.ConnFailKind
	Replica netip.Addr
	Conns   int16
}

// Analysis accumulates a run's records.
type Analysis struct {
	Topo *workload.Topology

	// Window. "Hours" counts episode bins; bins are 1 hour by default
	// (Section 4.4.3) but NewAnalysisBinned supports the paper's
	// episode-duration trade-off discussion (10-minute bins catch
	// short outages but starve on samples; 1-day bins bury them).
	StartHour int64
	Hours     int
	binNS     int64

	nClients, nSites int

	// Dense per-entity-per-hour grids.
	clientHours []entityHour // [client*Hours + h]
	serverHours []entityHour // [site*Hours + h]

	// Replica grid: replicas indexed densely.
	replicaIdx   map[netip.Addr]int
	replicaAddrs []netip.Addr
	replicaSite  []int32      // replica -> site index
	replicaHours []entityHour // [replica*Hours + h]
	replicaConns []int64      // total connections per replica (for the 10% rule)
	siteConns    []int64      // total connections per site

	// Month-long per-pair counts (permanent pair detection).
	pairTxns  []int32 // [client*nSites + site]
	pairFails []int32

	// Category totals (Table 3).
	catTxns, catFails   map[workload.Category]int64
	catConns, catFailCo map[workload.Category]int64

	// Failure-stage counts per category (Figure 1).
	stageCounts map[workload.Category]map[httpsim.Stage]int64

	// DNS failure sub-classes per category (Table 4) and per website
	// (Figure 2).
	dnsClassByCat  map[workload.Category]map[measure.DNSOutcome]int64
	dnsClassBySite []map[measure.DNSOutcome]int64

	// TCP failure kinds per category (Figure 3).
	tcpKindByCat map[workload.Category]map[httpsim.ConnFailKind]int64

	// Retained failures for attribution.
	Failures []FailureRec

	// Per-client loss accounting (Section 4.1.3).
	clientPkts, clientRetrans []int64

	// Grand totals.
	TotalTxns, TotalFails int64
}

// NewAnalysis creates an accumulator for records in [start, end) with the
// paper's 1-hour episode bins.
func NewAnalysis(topo *workload.Topology, start, end simnet.Time) *Analysis {
	return NewAnalysisBinned(topo, start, end, time.Hour)
}

// NewAnalysisBinned creates an accumulator with a custom episode bin
// duration — the ablation knob for the Section 4.4.3 trade-off. The BGP
// correlation requires 1-hour bins (Routeviews aggregation is hourly).
func NewAnalysisBinned(topo *workload.Topology, start, end simnet.Time, bin time.Duration) *Analysis {
	if bin <= 0 {
		bin = time.Hour
	}
	binNS := int64(bin)
	hours := int((int64(end) - int64(start) + binNS - 1) / binNS)
	if hours <= 0 {
		hours = 1
	}
	a := &Analysis{
		Topo:          topo,
		StartHour:     int64(start) / binNS,
		Hours:         hours,
		binNS:         binNS,
		nClients:      len(topo.Clients),
		nSites:        len(topo.Websites),
		replicaIdx:    make(map[netip.Addr]int),
		catTxns:       make(map[workload.Category]int64),
		catFails:      make(map[workload.Category]int64),
		catConns:      make(map[workload.Category]int64),
		catFailCo:     make(map[workload.Category]int64),
		stageCounts:   make(map[workload.Category]map[httpsim.Stage]int64),
		dnsClassByCat: make(map[workload.Category]map[measure.DNSOutcome]int64),
		tcpKindByCat:  make(map[workload.Category]map[httpsim.ConnFailKind]int64),
	}
	a.clientHours = make([]entityHour, a.nClients*hours)
	a.serverHours = make([]entityHour, a.nSites*hours)
	a.pairTxns = make([]int32, a.nClients*a.nSites)
	a.pairFails = make([]int32, a.nClients*a.nSites)
	a.dnsClassBySite = make([]map[measure.DNSOutcome]int64, a.nSites)
	a.clientPkts = make([]int64, a.nClients)
	a.clientRetrans = make([]int64, a.nClients)
	a.siteConns = make([]int64, a.nSites)
	for j := range topo.Websites {
		for _, ra := range topo.Websites[j].ReplicaAddrs {
			a.replicaIdx[ra] = len(a.replicaAddrs)
			a.replicaAddrs = append(a.replicaAddrs, ra)
			a.replicaSite = append(a.replicaSite, int32(j))
		}
	}
	a.replicaHours = make([]entityHour, len(a.replicaAddrs)*hours)
	a.replicaConns = make([]int64, len(a.replicaAddrs))
	return a
}

// hourIndex maps a record time to the window-relative bin, clamped.
func (a *Analysis) hourIndex(at simnet.Time) int {
	h := int(int64(at)/a.binNS - a.StartHour)
	if h < 0 {
		h = 0
	}
	if h >= a.Hours {
		h = a.Hours - 1
	}
	return h
}

// Add consumes one record. Records must arrive in per-client time order
// (both measure modes guarantee per-client ordering) for streak tracking.
func (a *Analysis) Add(r *measure.Record) {
	h := a.hourIndex(r.At)
	ci, si := int(r.ClientIdx), int(r.SiteIdx)
	failed := r.Failed()

	a.TotalTxns++
	a.catTxns[r.Category]++
	conns := int64(r.Conns)
	failConns := int64(r.FailedConns())
	a.catConns[r.Category] += conns
	a.catFailCo[r.Category] += failConns

	ch := &a.clientHours[ci*a.Hours+h]
	sh := &a.serverHours[si*a.Hours+h]
	for _, eh := range [2]*entityHour{ch, sh} {
		eh.Txns++
		eh.Conns += int32(conns)
		eh.FailConns += int32(failConns)
		if failed {
			eh.FailTxns++
		}
	}
	// Streaks are a per-client notion (consecutive accesses by the
	// client failing, Figure 5).
	if failed {
		ch.streakCur++
		if ch.streakCur > ch.StreakMax {
			ch.StreakMax = ch.streakCur
		}
	} else {
		ch.streakCur = 0
	}

	a.pairTxns[ci*a.nSites+si]++
	a.siteConns[si] += conns
	if ri, ok := a.replicaIdx[r.ReplicaIP]; ok {
		rh := &a.replicaHours[ri*a.Hours+h]
		rh.Txns++
		rh.Conns += int32(conns)
		rh.FailConns += int32(failConns)
		if failed {
			rh.FailTxns++
		}
		a.replicaConns[ri] += conns
	}

	a.clientPkts[ci] += int64(r.DataPkts)
	a.clientRetrans[ci] += int64(r.Retransmits)

	if !failed {
		return
	}
	a.TotalFails++
	a.catFails[r.Category]++
	a.pairFails[ci*a.nSites+si]++

	sc := a.stageCounts[r.Category]
	if sc == nil {
		sc = make(map[httpsim.Stage]int64)
		a.stageCounts[r.Category] = sc
	}
	sc[r.Stage]++

	switch r.Stage {
	case httpsim.StageDNS:
		dc := a.dnsClassByCat[r.Category]
		if dc == nil {
			dc = make(map[measure.DNSOutcome]int64)
			a.dnsClassByCat[r.Category] = dc
		}
		dc[r.DNS]++
		ds := a.dnsClassBySite[si]
		if ds == nil {
			ds = make(map[measure.DNSOutcome]int64)
			a.dnsClassBySite[si] = ds
		}
		ds[r.DNS]++
	case httpsim.StageTCP:
		tk := a.tcpKindByCat[r.Category]
		if tk == nil {
			tk = make(map[httpsim.ConnFailKind]int64)
			a.tcpKindByCat[r.Category] = tk
		}
		tk[r.FailKind]++
	}

	a.Failures = append(a.Failures, FailureRec{
		Client:  r.ClientIdx,
		Site:    r.SiteIdx,
		Hour:    int32(h),
		Stage:   r.Stage,
		DNS:     r.DNS,
		Kind:    r.FailKind,
		Replica: r.ReplicaIP,
		Conns:   r.Conns,
	})
}

// ClientHour returns the accumulated cell.
func (a *Analysis) ClientHour(client, hour int) entityHour {
	return a.clientHours[client*a.Hours+hour]
}

// ServerHour returns the accumulated cell.
func (a *Analysis) ServerHour(site, hour int) entityHour {
	return a.serverHours[site*a.Hours+hour]
}

// PairStats returns the month-long totals for a client-server pair.
func (a *Analysis) PairStats(client, site int) (txns, fails int32) {
	return a.pairTxns[client*a.nSites+site], a.pairFails[client*a.nSites+site]
}

// String summarizes the accumulated run.
func (a *Analysis) String() string {
	return fmt.Sprintf("analysis: %d txns, %d failures (%.2f%%) over %d hours",
		a.TotalTxns, a.TotalFails, 100*float64(a.TotalFails)/float64(maxI64(a.TotalTxns, 1)), a.Hours)
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
