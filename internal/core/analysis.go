// Package core implements the paper's primary contribution: the
// client-based characterization and cross-correlation analysis of
// end-to-end web access failures (Sections 2 and 4) —
//
//   - transaction failure classification and per-category breakdowns
//     (Table 3, Table 4, Figures 1–3);
//   - 1-hour failure episodes, the failure-rate CDFs and their knee
//     (Figure 4), and the blame-attribution procedure classifying failures
//     as server-side / client-side / both / other (Table 5);
//   - permanent client-server pair detection and exclusion (Section
//     4.4.2);
//   - server-side episode statistics, coalescing, and spread (Table 6);
//   - co-located client similarity (Tables 7–8);
//   - replica-level total/partial failure classification (Section 4.5);
//   - BGP instability correlation (Section 4.6, Figures 5–7);
//   - shared proxy-related failure isolation (Section 4.7, Table 9).
//
// The Analysis accumulator consumes measure.Records in one streaming
// pass; every analysis is a pure function over the accumulated state.
// The state itself is decomposed into independent analyzer passes (see
// Pass and the Pass* names): callers that need only some artifacts
// select only the passes those artifacts require, and unselected passes
// are never constructed.
package core

import (
	"fmt"
	"net/netip"
	"time"

	"webfail/internal/httpsim"
	"webfail/internal/measure"
	"webfail/internal/simnet"
	"webfail/internal/workload"
)

// entityHour is the composite view of one client's or server's traffic
// within one 1-hour episode (Section 4.4.3 fixes the episode duration
// at one hour), assembled from the grids and conns passes by the
// ClientHour/ServerHour accessors. Fields belonging to an unselected
// pass read as zero.
type entityHour struct {
	Txns      int32
	FailTxns  int32
	Conns     int32
	FailConns int32
	// Streak tracking: longest run of consecutive failed transactions
	// within the hour (Figure 5's third graph).
	streakCur int16
	StreakMax int16
}

// FailureRec is the compact retained form of a failed transaction, the
// input to the attribution pass.
type FailureRec struct {
	Client  int32
	Site    int32
	Hour    int32 // hour index relative to the analysis window
	Stage   httpsim.Stage
	DNS     measure.DNSOutcome
	Kind    httpsim.ConnFailKind
	Replica netip.Addr
	Conns   int16
}

// Analysis accumulates a run's records across a selected set of
// analyzer passes. The zero selection is every pass; each analysis
// method is a pure function over the pass state it requires and panics
// if that pass was not selected.
type Analysis struct {
	Topo *workload.Topology

	// Window. "Hours" counts episode bins; bins are 1 hour by default
	// (Section 4.4.3) but NewAnalysisBinned supports the paper's
	// episode-duration trade-off discussion (10-minute bins catch
	// short outages but starve on samples; 1-day bins bury them).
	StartHour int64
	Hours     int
	binNS     int64

	nClients, nSites int

	// Resolved representation mode (never StateAuto): the backend every
	// state-bearing pass was constructed with. See StateMode.
	state StateMode

	// Active passes in canonical order, plus typed handles: the typed
	// fields are nil for unselected passes, and the ingest hot path
	// dispatches through them directly rather than via the interface.
	active   []Pass
	totals   *totalsPass
	traffic  *trafficPass
	grids    *gridsPass
	fails    *failuresPass
	pairs    *pairsPass
	replicas *replicasPass
	conns    *connsPass
}

// NewAnalysis creates an accumulator for records in [start, end) with the
// paper's 1-hour episode bins and every analyzer pass selected.
func NewAnalysis(topo *workload.Topology, start, end simnet.Time) *Analysis {
	return NewAnalysisBinned(topo, start, end, time.Hour)
}

// NewAnalysisSelected creates an accumulator with 1-hour bins and only
// the given analyzer passes (none = all; totals is always included).
func NewAnalysisSelected(topo *workload.Topology, start, end simnet.Time, passes ...PassName) *Analysis {
	return NewAnalysisBinnedSelected(topo, start, end, time.Hour, passes...)
}

// NewAnalysisBinned creates an accumulator with a custom episode bin
// duration — the ablation knob for the Section 4.4.3 trade-off. The BGP
// correlation requires 1-hour bins (Routeviews aggregation is hourly).
func NewAnalysisBinned(topo *workload.Topology, start, end simnet.Time, bin time.Duration) *Analysis {
	return NewAnalysisBinnedSelected(topo, start, end, bin)
}

// NewAnalysisBinnedSelected creates an accumulator with a custom bin
// duration and only the given analyzer passes (none = all; totals is
// always included).
func NewAnalysisBinnedSelected(topo *workload.Topology, start, end simnet.Time, bin time.Duration, passes ...PassName) *Analysis {
	return NewAnalysisOpts(topo, start, end, Options{Bin: bin, Passes: passes})
}

// Options configures an Analysis beyond its window.
type Options struct {
	// Bin is the episode bin duration (<= 0 means the paper's 1 hour).
	Bin time.Duration
	// State selects the pass representation; StateAuto (the zero value)
	// resolves from roster geometry against DenseCellBudget.
	State StateMode
	// Passes selects the analyzer passes (none = all; totals is always
	// included).
	Passes []PassName
}

// NewAnalysisOpts is the fully general constructor: every other
// NewAnalysis* variant delegates here.
func NewAnalysisOpts(topo *workload.Topology, start, end simnet.Time, opts Options) *Analysis {
	bin := opts.Bin
	if bin <= 0 {
		bin = time.Hour
	}
	binNS := int64(bin)
	hours := int((int64(end) - int64(start) + binNS - 1) / binNS)
	if hours <= 0 {
		hours = 1
	}
	nReplicas := 0
	for j := range topo.Websites {
		nReplicas += len(topo.Websites[j].ReplicaAddrs)
	}
	a := &Analysis{
		Topo:      topo,
		StartHour: int64(start) / binNS,
		Hours:     hours,
		binNS:     binNS,
		nClients:  len(topo.Clients),
		nSites:    len(topo.Websites),
		state:     resolveState(opts.State, len(topo.Clients), len(topo.Websites), nReplicas, hours),
	}
	for _, name := range normalizePasses(opts.Passes) {
		var p Pass
		switch name {
		case PassTotals:
			a.totals = newTotalsPass()
			p = a.totals
		case PassTraffic:
			a.traffic = newTrafficPass(a.nClients, a.nSites, a.state)
			p = a.traffic
		case PassGrids:
			a.grids = newGridsPass(a.nClients, a.nSites, hours, a.state)
			p = a.grids
		case PassFailures:
			a.fails = newFailuresPass()
			p = a.fails
		case PassPairs:
			a.pairs = newPairsPass(a.nClients, a.nSites, a.state)
			p = a.pairs
		case PassReplicas:
			a.replicas = newReplicasPass(topo, hours, a.state)
			p = a.replicas
		case PassConns:
			a.conns = newConnsPass(a.nClients, a.nSites, hours, a.state)
			p = a.conns
		}
		a.active = append(a.active, p)
	}
	return a
}

// Passes returns the selected pass names in canonical order.
func (a *Analysis) Passes() []PassName {
	out := make([]PassName, len(a.active))
	for i, p := range a.active {
		out[i] = p.Name()
	}
	return out
}

// hourIndex maps a record time to the window-relative bin, clamped.
func (a *Analysis) hourIndex(at simnet.Time) int {
	h := int(int64(at)/a.binNS - a.StartHour)
	if h < 0 {
		h = 0
	}
	if h >= a.Hours {
		h = a.Hours - 1
	}
	return h
}

// Add consumes one record into every selected pass. Records must arrive
// in per-client time order (both measure modes guarantee per-client
// ordering) for streak tracking.
func (a *Analysis) Add(r *measure.Record) {
	h := a.hourIndex(r.At)
	// Direct typed dispatch: this is the ingest hot path, and the
	// passes are independent, so order does not matter.
	if a.totals != nil {
		a.totals.consume(r)
	}
	if a.traffic != nil {
		a.traffic.consume(r)
	}
	if a.grids != nil {
		a.grids.consume(r, h)
	}
	if a.conns != nil {
		a.conns.consume(r, h)
	}
	if a.pairs != nil {
		a.pairs.consume(r)
	}
	if a.replicas != nil {
		a.replicas.consume(r, h)
	}
	if a.fails != nil {
		a.fails.consume(r, h)
	}
}

func (a *Analysis) missingPass(name PassName) *Analysis {
	panic(fmt.Sprintf("core: analysis requires pass %q which was not selected", name))
}

func (a *Analysis) mustTraffic() *trafficPass {
	if a.traffic == nil {
		a.missingPass(PassTraffic)
	}
	return a.traffic
}

func (a *Analysis) mustGrids() *gridsPass {
	if a.grids == nil {
		a.missingPass(PassGrids)
	}
	return a.grids
}

func (a *Analysis) mustFailures() *failuresPass {
	if a.fails == nil {
		a.missingPass(PassFailures)
	}
	return a.fails
}

func (a *Analysis) mustPairs() *pairsPass {
	if a.pairs == nil {
		a.missingPass(PassPairs)
	}
	return a.pairs
}

func (a *Analysis) mustReplicas() *replicasPass {
	if a.replicas == nil {
		a.missingPass(PassReplicas)
	}
	return a.replicas
}

func (a *Analysis) mustConns() *connsPass {
	if a.conns == nil {
		a.missingPass(PassConns)
	}
	return a.conns
}

// TotalTxns returns the grand transaction count.
func (a *Analysis) TotalTxns() int64 { return a.totals.txns }

// TotalFails returns the grand failure count.
func (a *Analysis) TotalFails() int64 { return a.totals.fails }

// Failures returns the retained failure records in canonical
// (client-major, per-client time-ordered) order.
func (a *Analysis) Failures() []FailureRec { return a.mustFailures().recs }

// ClientHour returns the accumulated cell, assembled from the grids and
// conns passes (unselected passes contribute zeros).
func (a *Analysis) ClientHour(client, hour int) entityHour {
	var eh entityHour
	if a.grids != nil {
		c := a.grids.client.val(client*a.Hours + hour)
		eh.Txns, eh.FailTxns = c.Txns, c.FailTxns
	}
	if a.conns != nil {
		c := a.conns.client.val(client*a.Hours + hour)
		eh.Conns, eh.FailConns = c.Conns, c.FailConns
		eh.streakCur, eh.StreakMax = c.streakCur, c.StreakMax
	}
	return eh
}

// ServerHour returns the accumulated cell, assembled like ClientHour.
func (a *Analysis) ServerHour(site, hour int) entityHour {
	var eh entityHour
	if a.grids != nil {
		c := a.grids.server.val(site*a.Hours + hour)
		eh.Txns, eh.FailTxns = c.Txns, c.FailTxns
	}
	if a.conns != nil {
		c := a.conns.server.val(site*a.Hours + hour)
		eh.Conns, eh.FailConns = c.Conns, c.FailConns
	}
	return eh
}

// PairStats returns the month-long totals for a client-server pair.
func (a *Analysis) PairStats(client, site int) (txns, fails int64) {
	p := a.mustPairs()
	c := p.cells.val(client*a.nSites + site)
	return c.Txns, c.Fails
}

// String summarizes the accumulated run.
func (a *Analysis) String() string {
	return fmt.Sprintf("analysis: %d txns, %d failures (%.2f%%) over %d hours",
		a.totals.txns, a.totals.fails, 100*float64(a.totals.fails)/float64(max(a.totals.txns, 1)), a.Hours)
}
