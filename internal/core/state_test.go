package core

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"webfail/internal/httpsim"
	"webfail/internal/measure"
	"webfail/internal/scenario"
	"webfail/internal/simnet"
	"webfail/internal/workload"
)

// synthStream generates a deterministic client-major record stream over
// a synthetic topology, engineered to exercise every state-bearing
// pass: DNS/TCP/HTTP failure mixes, hour-localized client and server
// fault windows (episodes), always-failing pairs (permanent-pair
// detection and exclusion), replica hits, and loss-signal packet
// counts.
func synthStream(topo *workload.Topology, hours int64, perClient int, seed int64) []*measure.Record {
	var out []*measure.Record
	synthVisit(topo, hours, perClient, seed, func(r *measure.Record) {
		c := *r
		out = append(out, &c)
	})
	return out
}

// synthVisit is the streaming form of synthStream: records are
// generated client-major and handed to visit one at a time through a
// reused struct, so internet-scale rosters never materialize the
// stream (the scale tests feed millions of records this way).
func synthVisit(topo *workload.Topology, hours int64, perClient int, seed int64, visit func(*measure.Record)) {
	rng := rand.New(rand.NewSource(seed))
	nSites := len(topo.Websites)
	emit := func(c, s int, hour int64, fail bool) {
		r := measure.Record{
			ClientIdx: int32(c),
			SiteIdx:   int32(s),
			At:        simnet.FromHours(hour).Add(time.Duration(rng.Intn(3600)) * time.Second),
			Category:  topo.Clients[c].Category,
			Conns:     1,
		}
		if fail {
			switch rng.Intn(4) {
			case 0:
				r.Stage = httpsim.StageDNS
				r.DNS = measure.DNSLDNSTimeout
				r.Conns = 0
			case 3:
				r.Stage = httpsim.StageHTTP
				r.StatusCode = 503
				r.Conns = 2
			default:
				r.Stage = httpsim.StageTCP
				r.FailKind = httpsim.NoConnection
				r.Conns = 3
			}
		} else {
			r.StatusCode = 200
			r.Bytes = 10240
			r.DataPkts = int16(8 + rng.Intn(12))
			r.Retransmits = int16(rng.Intn(3))
			if ras := topo.Websites[s].ReplicaAddrs; len(ras) > 0 {
				r.ReplicaIP = ras[rng.Intn(len(ras))]
			}
		}
		visit(&r)
	}
	// Permanent pairs: every 6th client is fully blocked from one site.
	blocked := func(c, s int) bool { return c%6 == 0 && s == (c/6)%nSites }
	for c := range topo.Clients {
		for i := 0; i < perClient; i++ {
			s := rng.Intn(nSites)
			hour := int64(rng.Intn(int(hours)))
			// Fault windows: some clients fail hard in the first two
			// hours, some servers fail hard in hours 3-4, producing
			// attributable episodes in both grids.
			p := 0.04
			if c%7 == 0 && hour < 2 {
				p = 0.95
			}
			if s%5 == 0 && hour >= 3 && hour < 5 {
				p = 0.95
			}
			if blocked(c, s) {
				p = 1
			}
			emit(c, s, hour, rng.Float64() < p)
		}
		// Extra accesses to the blocked site so the pair clears the
		// >=20-txn permanent-pair floor.
		if c%6 == 0 {
			s := (c / 6) % nSites
			for i := 0; i < 25; i++ {
				emit(c, s, int64(rng.Intn(int(hours))), true)
			}
		}
	}
}

// snapshotGrid captures a grid's non-zero cells, the representation-
// independent view of its contents (dense grids hold explicit zeros
// where sparse grids hold nothing).
func snapshotGrid[C comparable](g *grid[C]) map[int]C {
	m := make(map[int]C)
	var zero C
	g.forEach(func(i int, c *C) {
		if *c != zero {
			m[i] = *c
		}
	})
	return m
}

func snapshotCounterVec(v *counterVec) map[int32]int64 {
	m := make(map[int32]int64)
	for i := 0; i < v.n; i++ {
		if n := v.val(int32(i)); n != 0 {
			m[int32(i)] = n
		}
	}
	return m
}

// stateFingerprint is the artifact bundle the equivalence tests compare
// across representations and merge orders: every analysis output the
// report layer reads, plus representation-independent snapshots of the
// raw pass state.
type stateFingerprint struct {
	Txns, Fails          int64
	Summary              []CategorySummary
	ClientXs, ServerXs   []float64
	MedianC, MedianS     float64
	Q90                  float64
	Pairs                []PermanentPair
	ConnShare, TxnShare  float64
	Counts               map[Blame]int64
	Total                int64
	ClientEp, ServerEp   [][]int
	SES                  []ServerEpisodeStat
	AtLeastOne, Multiple int
	CoLoc                []PairSimilarity
	Table                SimilarityTable
	Top                  []PairSimilarity
	Rand                 []PairSimilarity
	Census               ReplicaCensus
	Split                ReplicaFailureSplit
	Loss                 float64
	LossErr              string
	PairSpec             PairSpecificResult

	GridClient, GridServer map[int]gridCell
	ConnClient, ConnServer map[int]connCell
	PairCells              map[int]pairCell
	ReplicaHours           map[int]gridCell
	Pkts, Retr             map[int32]int64
}

func fingerprint(a *Analysis) stateFingerprint {
	fp := stateFingerprint{
		Txns:    a.TotalTxns(),
		Fails:   a.TotalFails(),
		Summary: a.Summary(),
	}
	cc, sc := a.EpisodeRateCDFs()
	fp.ClientXs, _ = cc.Points(cc.Len())
	fp.ServerXs, _ = sc.Points(sc.Len())
	fp.MedianC, fp.MedianS = a.MedianFailureRates()
	fp.Q90 = a.ClientFailureRateQuantile(0.9)
	fp.Pairs = a.PermanentPairs(0.9)
	fp.ConnShare, fp.TxnShare = a.PermanentPairShare(fp.Pairs)
	at := a.Attribute(0.5, fp.Pairs)
	fp.Counts, fp.Total = at.Counts, at.Total
	for _, hs := range at.ClientEpisodeHours {
		fp.ClientEp = append(fp.ClientEp, hs.Hours())
	}
	for _, hs := range at.ServerEpisodeHours {
		fp.ServerEp = append(fp.ServerEp, hs.Hours())
	}
	fp.SES = a.ServerEpisodeStats(at)
	fp.AtLeastOne, fp.Multiple = a.ServersWithEpisodes(at)
	fp.CoLoc = a.CoLocatedSimilarity(at)
	fp.Table, fp.Top = a.CoLocatedSimilarityTop(at, 8)
	fp.Rand = a.RandomPairSimilarity(at, 42, len(fp.CoLoc))
	fp.Census = a.ReplicaCensusDefault()
	fp.Split = a.ReplicaAnalysis(at, fp.Census)
	loss, err := a.LossCorrelation()
	fp.Loss = loss
	if err != nil {
		fp.LossErr = err.Error()
	}
	fp.PairSpec = a.ClientServerSpecific(at)

	fp.GridClient = snapshotGrid(&a.grids.client)
	fp.GridServer = snapshotGrid(&a.grids.server)
	fp.ConnClient = snapshotGrid(&a.conns.client)
	fp.ConnServer = snapshotGrid(&a.conns.server)
	fp.PairCells = snapshotGrid(&a.pairs.cells)
	fp.ReplicaHours = snapshotGrid(&a.replicas.replicaHours)
	fp.Pkts = snapshotCounterVec(&a.traffic.clientPkts)
	fp.Retr = snapshotCounterVec(&a.traffic.clientRetrans)
	return fp
}

// buildState feeds recs serially into a fresh accumulator with the
// given representation.
func buildState(topo *workload.Topology, hours int64, st StateMode, recs []*measure.Record) *Analysis {
	a := NewAnalysisOpts(topo, 0, simnet.FromHours(hours), Options{State: st})
	for _, r := range recs {
		a.Add(r)
	}
	return a
}

// buildSharded partitions recs by contiguous client range into shards
// accumulators (the measure.RunParallel partition) and merges them in
// the given order.
func buildSharded(t *testing.T, topo *workload.Topology, hours int64, st StateMode, recs []*measure.Record, shards int, order []int) *Analysis {
	t.Helper()
	n := len(topo.Clients)
	accs := make([]*Analysis, shards)
	for i := range accs {
		accs[i] = NewAnalysisOpts(topo, 0, simnet.FromHours(hours), Options{State: st})
	}
	for _, r := range recs {
		s := int(r.ClientIdx) * shards / n
		if s >= shards {
			s = shards - 1
		}
		accs[s].Add(r)
	}
	merged := NewAnalysisOpts(topo, 0, simnet.FromHours(hours), Options{State: st})
	for _, s := range order {
		if err := merged.Merge(accs[s]); err != nil {
			t.Fatalf("merge shard %d: %v", s, err)
		}
	}
	return merged
}

// TestSparseDenseEquivalence is the property-style equivalence harness:
// random synthetic rosters, the same record stream through the dense
// and the sparse backends, and exact equality of every analysis
// artifact the report layer reads.
func TestSparseDenseEquivalence(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(1000 + seed))
			nClients := 16 + rng.Intn(40)
			nSites := 8 + rng.Intn(16)
			hours := int64(6 + rng.Intn(6))
			topo := scenario.SyntheticTopology(nClients, nSites)
			recs := synthStream(topo, hours, 24*int(hours), seed)

			dense := buildState(topo, hours, StateDense, recs)
			sparse := buildState(topo, hours, StateSparse, recs)
			if dense.State() != StateDense || sparse.State() != StateSparse {
				t.Fatalf("resolved states = %v/%v", dense.State(), sparse.State())
			}
			dfp, sfp := fingerprint(dense), fingerprint(sparse)
			if !reflect.DeepEqual(dfp, sfp) {
				diffFingerprint(t, dfp, sfp)
			}
		})
	}
}

// TestSparseMergeOrderIndependence asserts the sharded-ingest result is
// identical for any shard count and any merge order, in both
// representations, including the materialized-cell count the CLIs
// expose as a metric.
func TestSparseMergeOrderIndependence(t *testing.T) {
	topo := scenario.SyntheticTopology(36, 12)
	const hours = 8
	recs := synthStream(topo, hours, 200, 7)
	for _, st := range []StateMode{StateDense, StateSparse} {
		serial := buildState(topo, hours, st, recs)
		want := fingerprint(serial)
		wantCells := serial.StateCells()
		for _, shards := range []int{2, 3, 5} {
			order := make([]int, shards)
			for i := range order {
				order[i] = i
			}
			for trial := 0; trial < 3; trial++ {
				rand.New(rand.NewSource(int64(trial))).Shuffle(shards, func(i, j int) {
					order[i], order[j] = order[j], order[i]
				})
				m := buildSharded(t, topo, hours, st, recs, shards, order)
				if got := fingerprint(m); !reflect.DeepEqual(got, want) {
					t.Errorf("%v state, %d shards, order %v: merged artifacts differ from serial", st, shards, order)
					diffFingerprint(t, want, got)
				}
				if got := m.StateCells(); got != wantCells {
					t.Errorf("%v state, %d shards, order %v: StateCells = %d, want %d", st, shards, order, got, wantCells)
				}
			}
		}
	}
}

// diffFingerprint reports which artifact diverged, field by field, so a
// regression names the broken analysis rather than "DeepEqual failed".
func diffFingerprint(t *testing.T, want, got stateFingerprint) {
	t.Helper()
	wv, gv := reflect.ValueOf(want), reflect.ValueOf(got)
	for i := 0; i < wv.NumField(); i++ {
		if !reflect.DeepEqual(wv.Field(i).Interface(), gv.Field(i).Interface()) {
			t.Errorf("artifact %s differs:\n want %v\n  got %v",
				wv.Type().Field(i).Name, wv.Field(i).Interface(), gv.Field(i).Interface())
		}
	}
}

// TestMergeStateModeMismatch: a dense accumulator must refuse a sparse
// shard (and vice versa) rather than corrupt its grids.
func TestMergeStateModeMismatch(t *testing.T) {
	topo := scenario.PaperScaledTopology(4, 4)
	end := simnet.FromHours(2)
	d := NewAnalysisOpts(topo, 0, end, Options{State: StateDense})
	s := NewAnalysisOpts(topo, 0, end, Options{State: StateSparse})
	if err := d.Merge(s); err == nil {
		t.Error("dense.Merge(sparse) succeeded, want error")
	}
	if err := s.Merge(d); err == nil {
		t.Error("sparse.Merge(dense) succeeded, want error")
	}
}

// TestResolveState pins the auto-selection boundary: paper-scale
// geometry stays dense, mega-roster geometry flips sparse, and explicit
// modes pass through untouched.
func TestResolveState(t *testing.T) {
	if st := resolveState(StateAuto, 134, 80, 150, 744); st != StateDense {
		t.Errorf("paper geometry resolved %v, want dense", st)
	}
	if st := resolveState(StateAuto, 200_000, 1_000, 2_000, 744); st != StateSparse {
		t.Errorf("mega geometry resolved %v, want sparse", st)
	}
	// clients x sites alone can cross the budget even with few bins.
	if st := resolveState(StateAuto, 100_000, 1_000, 0, 1); st != StateSparse {
		t.Errorf("wide pair geometry resolved %v, want sparse", st)
	}
	if st := resolveState(StateDense, 200_000, 1_000, 2_000, 744); st != StateDense {
		t.Errorf("explicit dense resolved %v", st)
	}
	if st := resolveState(StateSparse, 4, 4, 4, 2); st != StateSparse {
		t.Errorf("explicit sparse resolved %v", st)
	}
	for _, tc := range []struct {
		in   string
		want StateMode
		ok   bool
	}{
		{"", StateAuto, true}, {"auto", StateAuto, true},
		{"dense", StateDense, true}, {"sparse", StateSparse, true},
		{"bogus", StateAuto, false},
	} {
		got, err := ParseStateMode(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseStateMode(%q) = %v, %v", tc.in, got, err)
		}
	}
}

// TestTopFailingPairsMatchesFull: the bounded-top-k listing must equal
// the complete listing truncated, for any k.
func TestTopFailingPairsMatchesFull(t *testing.T) {
	topo := scenario.SyntheticTopology(30, 10)
	const hours = 6
	a := buildState(topo, hours, StateSparse, synthStream(topo, hours, 150, 3))
	full := a.PermanentPairs(0.9)
	if len(full) < 3 {
		t.Fatalf("synthetic stream produced only %d permanent pairs; want more for a meaningful test", len(full))
	}
	for _, k := range []int{0, 1, 3, len(full), len(full) + 5} {
		got := a.TopFailingPairs(0.9, k)
		want := full
		if len(want) > k {
			want = want[:k]
		}
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("TopFailingPairs(k=%d) = %+v, want %+v", k, got, want)
		}
	}
}

// TestRandomPairSimilarityBounded: on a roster where every eligible
// pair is co-located (one site), the rejection-sampling loop can never
// find a pair — it must bail out deterministically instead of spinning
// forever (the pre-fix behavior).
func TestRandomPairSimilarityBounded(t *testing.T) {
	topo := scenario.SyntheticTopology(4, 2) // 4 clients, all on one site
	a := buildState(topo, 2, StateDense, nil)
	at := &Attribution{
		ClientEpisodeHours: make([]HourSet, len(topo.Clients)),
		ServerEpisodeHours: make([]HourSet, len(topo.Websites)),
	}
	done := make(chan []PairSimilarity, 1)
	go func() { done <- a.RandomPairSimilarity(at, 1, 10) }()
	select {
	case out := <-done:
		if len(out) != 0 {
			t.Errorf("got %d pairs from an all-co-located roster, want 0", len(out))
		}
	case <-time.After(10 * time.Second):
		t.Fatal("RandomPairSimilarity did not terminate on an all-co-located roster")
	}
	// Sanity: a mixed roster still fills the requested count.
	topo2 := scenario.SyntheticTopology(12, 2)
	a2 := buildState(topo2, 2, StateDense, nil)
	at2 := &Attribution{
		ClientEpisodeHours: make([]HourSet, len(topo2.Clients)),
		ServerEpisodeHours: make([]HourSet, len(topo2.Websites)),
	}
	if out := a2.RandomPairSimilarity(at2, 1, 5); len(out) != 5 {
		t.Errorf("mixed roster: got %d pairs, want 5", len(out))
	}
}

// TestPairCellInt64: the per-pair counters must carry counts past the
// int32 range a month-long mega-roster run can exceed (satellite fix:
// they were int32).
func TestPairCellInt64(t *testing.T) {
	p := newPairsPass(1, 1, StateDense)
	cell := p.cells.mut(0)
	cell.Txns = math.MaxInt32
	cell.Fails = math.MaxInt32
	r := &measure.Record{Stage: httpsim.StageTCP, Conns: 1}
	p.consume(r)
	if cell.Txns != math.MaxInt32+1 || cell.Fails != math.MaxInt32+1 {
		t.Errorf("pair cell after overflow-boundary consume = %d/%d, want %d", cell.Txns, cell.Fails, int64(math.MaxInt32)+1)
	}
	// Merge must also carry int64 sums.
	q := newPairsPass(1, 1, StateDense)
	qc := q.cells.mut(0)
	qc.Txns = math.MaxInt32
	if err := p.Merge(q); err != nil {
		t.Fatal(err)
	}
	if want := int64(math.MaxInt32)*2 + 1; cell.Txns != want {
		t.Errorf("merged pair txns = %d, want %d", cell.Txns, want)
	}
}
