package core

import (
	"fmt"
	"sort"
)

// grid is the capacity-aware backing for a pass's fixed-geometry cell
// array: a flat slice in dense mode, a hash map of materialized cells
// in sparse mode. The logical length n is the full roster geometry in
// both modes; sparse cells that were never touched read as zero.
//
// The two backends must agree observably: forEach visits cells in
// ascending index order in both modes, but skips unmaterialized cells
// in sparse mode, so consumers must be written so zero-valued cells
// contribute nothing (every analysis here filters on a minimum sample
// count or sums, which zero cells cannot affect).
type grid[C any] struct {
	n      int
	dense  []C
	sparse map[int]*C
}

func newGrid[C any](n int, st StateMode) grid[C] {
	if st == StateSparse {
		return grid[C]{n: n, sparse: make(map[int]*C)}
	}
	return grid[C]{n: n, dense: make([]C, n)}
}

// mut returns a mutable cell, materializing it in sparse mode. The
// ingest hot path.
func (g *grid[C]) mut(i int) *C {
	if g.dense != nil {
		return &g.dense[i]
	}
	c := g.sparse[i]
	if c == nil {
		c = new(C)
		g.sparse[i] = c
	}
	return c
}

// val reads a cell; unmaterialized sparse cells read as zero.
func (g *grid[C]) val(i int) C {
	if g.dense != nil {
		return g.dense[i]
	}
	if c := g.sparse[i]; c != nil {
		return *c
	}
	var zero C
	return zero
}

// touched reports how many cells are materialized (the full length in
// dense mode) — the capacity metric the CLIs expose.
func (g *grid[C]) touched() int {
	if g.dense != nil {
		return len(g.dense)
	}
	return len(g.sparse)
}

// forEach visits cells in ascending index order: every cell in dense
// mode, only materialized cells in sparse mode.
func (g *grid[C]) forEach(fn func(i int, c *C)) {
	if g.dense != nil {
		for i := range g.dense {
			fn(i, &g.dense[i])
		}
		return
	}
	keys := make([]int, 0, len(g.sparse))
	for k := range g.sparse {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		fn(k, g.sparse[k])
	}
}

// mergeGrid folds src into dst cell-wise with add. Cell-wise addition
// commutes, so sparse map iteration order cannot affect the result and
// shard merges stay order-independent. Backends of the two grids must
// match (Analysis.Merge checks the resolved state mode up front).
func mergeGrid[C any](dst, src *grid[C], add func(d, s *C)) error {
	if dst.n != src.n || (dst.dense != nil) != (src.dense != nil) {
		return fmt.Errorf("core: merge of mismatched grids (%d cells dense=%v vs %d cells dense=%v)",
			dst.n, dst.dense != nil, src.n, src.dense != nil)
	}
	if dst.dense != nil {
		for i := range src.dense {
			add(&dst.dense[i], &src.dense[i])
		}
		return nil
	}
	for k, s := range src.sparse {
		add(dst.mut(k), s)
	}
	return nil
}

// rowTotals reduces a grid of rows x rowLen cells to one summed cell
// per row in a single scan — the per-entity month totals the headline
// analyses read. Zero cells add nothing, so both backends agree.
func rowTotals(g *grid[gridCell], rowLen, rows int) []gridCell {
	out := make([]gridCell, rows)
	g.forEach(func(i int, c *gridCell) {
		t := &out[i/rowLen]
		t.Txns += c.Txns
		t.FailTxns += c.FailTxns
	})
	return out
}

// counterVec is a capacity-aware int64 counter array (per-client
// accounting in the traffic pass): flat in dense mode, hash-backed in
// sparse mode.
type counterVec struct {
	n      int
	dense  []int64
	sparse map[int32]int64
}

func newCounterVec(n int, st StateMode) counterVec {
	if st == StateSparse {
		return counterVec{n: n, sparse: make(map[int32]int64)}
	}
	return counterVec{n: n, dense: make([]int64, n)}
}

func (v *counterVec) add(i int32, n int64) {
	if v.dense != nil {
		v.dense[i] += n
		return
	}
	v.sparse[i] += n
}

func (v *counterVec) val(i int32) int64 {
	if v.dense != nil {
		return v.dense[i]
	}
	return v.sparse[i]
}

func (v *counterVec) touched() int {
	if v.dense != nil {
		return len(v.dense)
	}
	return len(v.sparse)
}

func mergeCounterVec(dst, src *counterVec) error {
	if dst.n != src.n || (dst.dense != nil) != (src.dense != nil) {
		return fmt.Errorf("core: merge of mismatched counter vectors (%d dense=%v vs %d dense=%v)",
			dst.n, dst.dense != nil, src.n, src.dense != nil)
	}
	if dst.dense != nil {
		for i, n := range src.dense {
			dst.dense[i] += n
		}
		return nil
	}
	for i, n := range src.sparse {
		dst.sparse[i] += n
	}
	return nil
}
