package core

import (
	"net/netip"
	"sort"

	"webfail/internal/bgpsim"
	"webfail/internal/faults"
	"webfail/internal/simnet"
	"webfail/internal/stats"
	"webfail/internal/workload"
)

// GenerateBGP derives the Routeviews-style update archive implied by a
// scenario: every BGPInstability episode becomes a withdrawal storm over
// its prefix (the episode severity is the withdrawing-neighbor fraction),
// on top of baseline churn, with one collector session reset injected to
// exercise the Section 3.6 cleaning procedure. Returns the cleaned hourly
// aggregation and the hours flagged as resets.
func GenerateBGP(topo *workload.Topology, sc *workload.Scenario, seed int64) (bgpsim.PrefixHourTable, map[int64]bool) {
	prefixes := topo.AllPrefixes()
	gen := bgpsim.NewGenerator(seed, prefixes)
	gen.GenerateBaseline(sc.Params.Start, sc.Params.End)

	for _, pfx := range prefixes {
		ent := faults.Entity("prefix:" + pfx.String())
		for _, ep := range sc.Timeline.Episodes(ent) {
			if ep.Kind != faults.BGPInstability {
				continue
			}
			gen.InjectInstability(bgpsim.InstabilityEvent{
				Prefix:             pfx,
				Start:              ep.Start,
				Duration:           ep.Duration,
				NeighborFraction:   ep.Severity,
				ExplorationUpdates: 2,
			})
		}
	}
	// One mid-experiment collector reset (the artifact the cleaning
	// step exists for), placed deterministically.
	if span := sc.Params.End.Sub(sc.Params.Start); span > 0 {
		gen.InjectCollectorReset(sc.Params.Start.Add(span/3), 2)
	}

	table := bgpsim.Aggregate(gen.Updates())
	resets := bgpsim.Clean(table, bgpsim.CleanConfig{ResetFraction: 0.5, TotalPrefixes: len(prefixes)})
	return table, resets
}

// InstabilityHour is one (prefix, hour) flagged severely unstable, joined
// with the end-to-end TCP failure rate of the prefix's entities.
type InstabilityHour struct {
	Prefix   netip.Prefix
	Hour     int64 // absolute hour index
	FailRate float64
	Attempts int
	// Withdrawals and WithdrawNeighbors echo the BGP side.
	Withdrawals       int
	WithdrawNeighbors int
}

// BGPCorrelation joins severe BGP instability hours with end-to-end
// failure rates (Section 4.6): definition A flags hours where >= 70 of 73
// neighbors withdrew; definition B requires >= 50 neighbors and >= 75
// withdrawal messages.
type BGPCorrelation struct {
	Severe70    []InstabilityHour
	Severe50x75 []InstabilityHour
	// TotalPrefixHours is the population size (prefixes x hours), the
	// paper's "719 one-hour periods and 203 clients and replicas".
	TotalPrefixHours int64
}

// prefixEntities maps each monitored prefix to the client and site
// indices whose traffic it carries.
type prefixEntities struct {
	clients map[netip.Prefix][]int
	sites   map[netip.Prefix][]int
}

func (a *Analysis) prefixEntities() prefixEntities {
	pe := prefixEntities{
		clients: make(map[netip.Prefix][]int),
		sites:   make(map[netip.Prefix][]int),
	}
	for i := range a.Topo.Clients {
		p := a.Topo.Clients[i].Prefix
		pe.clients[p] = append(pe.clients[p], i)
	}
	for s := range a.Topo.Websites {
		for _, p := range a.Topo.Websites[s].Prefixes {
			pe.sites[p] = append(pe.sites[p], s)
		}
	}
	return pe
}

// prefixHourFailRate aggregates the TCP connection failure rate of the
// prefix's entities in the given window-relative hour.
func (a *Analysis) prefixHourFailRate(pe prefixEntities, pfx netip.Prefix, h int) (rate float64, attempts int) {
	cp := a.mustConns()
	var conns, fails int64
	for _, c := range pe.clients[pfx] {
		cell := cp.client.val(c*a.Hours + h)
		conns += int64(cell.Conns)
		fails += int64(cell.FailConns)
	}
	for _, s := range pe.sites[pfx] {
		cell := cp.server.val(s*a.Hours + h)
		conns += int64(cell.Conns)
		fails += int64(cell.FailConns)
	}
	if conns == 0 {
		return 0, 0
	}
	return float64(fails) / float64(conns), int(conns)
}

// CorrelateBGP produces the Section 4.6 join for both instability
// definitions.
func (a *Analysis) CorrelateBGP(table bgpsim.PrefixHourTable) *BGPCorrelation {
	pe := a.prefixEntities()
	out := &BGPCorrelation{}
	prefixes := a.Topo.AllPrefixes()
	out.TotalPrefixHours = int64(len(prefixes)) * int64(a.Hours)
	for _, pfx := range prefixes {
		for _, absHour := range table.Hours(pfx) {
			h := int(absHour - a.StartHour)
			if h < 0 || h >= a.Hours {
				continue
			}
			st := table.Get(pfx, absHour)
			sev70 := bgpsim.SevereInstability70(st)
			sevB := bgpsim.SevereInstability50x75(st)
			if !sev70 && !sevB {
				continue
			}
			rate, attempts := a.prefixHourFailRate(pe, pfx, h)
			if attempts == 0 {
				continue
			}
			ih := InstabilityHour{
				Prefix:            pfx,
				Hour:              absHour,
				FailRate:          rate,
				Attempts:          attempts,
				Withdrawals:       st.Withdrawals,
				WithdrawNeighbors: st.CleanedWithdrawNeighbors(),
			}
			if sev70 {
				out.Severe70 = append(out.Severe70, ih)
			}
			if sevB {
				out.Severe50x75 = append(out.Severe50x75, ih)
			}
		}
	}
	sortInstability(out.Severe70)
	sortInstability(out.Severe50x75)
	return out
}

func sortInstability(hs []InstabilityHour) {
	sort.Slice(hs, func(i, j int) bool {
		if hs[i].Hour != hs[j].Hour {
			return hs[i].Hour < hs[j].Hour
		}
		return hs[i].Prefix.String() < hs[j].Prefix.String()
	})
}

// FailRateCDF builds the Figure 6 CDF over the instability hours'
// end-to-end failure rates.
func FailRateCDF(hs []InstabilityHour) *stats.CDF {
	rates := make([]float64, len(hs))
	for i, h := range hs {
		rates[i] = h.FailRate
	}
	return stats.NewCDF(rates)
}

// FractionAbove reports the share of instability hours with failure rate
// above x (the paper: >80% of the >= 70-neighbor hours exceed 5%).
func FractionAbove(hs []InstabilityHour, x float64) float64 {
	if len(hs) == 0 {
		return 0
	}
	n := 0
	for _, h := range hs {
		if h.FailRate > x {
			n++
		}
	}
	return float64(n) / float64(len(hs))
}

// TimelinePoint is one hour of the Figure 5/7 per-client time series.
type TimelinePoint struct {
	Hour      int64 // absolute hour
	Unix      int64
	Attempts  int
	ConnFails int
	Streak    int
	// BGP side for the client's prefix.
	Withdrawals       int
	WithdrawNeighbors int
	Announcements     int
}

// ClientTimeline assembles the Figure 5/7 series for one client.
func (a *Analysis) ClientTimeline(clientName string, table bgpsim.PrefixHourTable) []TimelinePoint {
	node := a.Topo.ClientByName(clientName)
	if node == nil {
		return nil
	}
	ci := -1
	for i := range a.Topo.Clients {
		if a.Topo.Clients[i].Name == clientName {
			ci = i
		}
	}
	cp := a.mustConns()
	out := make([]TimelinePoint, 0, a.Hours)
	for h := 0; h < a.Hours; h++ {
		cell := cp.client.val(ci*a.Hours + h)
		abs := a.StartHour + int64(h)
		st := table.Get(node.Prefix, abs)
		out = append(out, TimelinePoint{
			Hour:              abs,
			Unix:              simnet.FromHours(abs).Unix(),
			Attempts:          int(cell.Conns),
			ConnFails:         int(cell.FailConns),
			Streak:            int(cell.StreakMax),
			Withdrawals:       st.Withdrawals,
			WithdrawNeighbors: st.CleanedWithdrawNeighbors(),
			Announcements:     st.Announcements,
		})
	}
	return out
}
