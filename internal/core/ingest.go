package core

import (
	"strings"
	"sync"

	"webfail/internal/dataset"
	"webfail/internal/measure"
	"webfail/internal/obs"
	"webfail/internal/simnet"
	"webfail/internal/workload"
)

// Consume streams every stored record of src into the accumulator in
// canonical (client-major, per-client time-ordered) order — the
// stored-data counterpart of feeding Add from a live measure.Run.
func (a *Analysis) Consume(src dataset.RecordSource) error {
	return dataset.AllRecords(src, func(r *measure.Record) error {
		a.Add(r)
		return nil
	})
}

// ConsumeParallel ingests src across shards workers, one contiguous
// client range per worker (the same partition measure.RunParallel
// uses), each reading only the chunks overlapping its range into a
// private accumulator; the shards merge in shard order, so the result
// is identical to a serial Consume for any shard count. shards <= 0
// selects GOMAXPROCS. passes selects the analyzer passes every shard
// accumulator is built with (none = all): unselected passes are never
// constructed, in any shard or in the merged result.
//
// Ingest is fully streaming: no shard ever materializes a []Record —
// the source hands each worker records one at a time through reused
// decode buffers (the RecordSource non-retention contract), so ingest
// memory is bounded by the source's per-chunk working set regardless of
// dataset size. Add copies everything it keeps, satisfying the
// contract.
func ConsumeParallel(topo *workload.Topology, start, end simnet.Time, src dataset.RecordSource, shards int, passes ...PassName) (*Analysis, error) {
	return ConsumeParallelOpts(topo, start, end, src, IngestOptions{Shards: shards, Passes: passes})
}

// ConsumeParallelObs is ConsumeParallel with observability attached:
// reg (may be nil) receives one deterministic records-ingested counter
// labeled with the selected pass set, and prog (may be nil) receives
// live per-shard ingest counts for the progress reporter.
func ConsumeParallelObs(topo *workload.Topology, start, end simnet.Time, src dataset.RecordSource, shards int, reg *obs.Registry, prog *obs.Progress, passes ...PassName) (*Analysis, error) {
	return ConsumeParallelOpts(topo, start, end, src, IngestOptions{
		Shards: shards, Metrics: reg, Progress: prog, Passes: passes,
	})
}

// IngestOptions configures ConsumeParallelOpts.
type IngestOptions struct {
	// Shards is the worker count (<= 0 selects GOMAXPROCS; clamped to
	// the client count).
	Shards int
	// State selects the representation every shard accumulator — and
	// the merged result — is built with (StateAuto resolves from roster
	// geometry, identically in every shard).
	State StateMode
	// Passes selects the analyzer passes (none = all).
	Passes []PassName
	// Metrics (may be nil) receives one deterministic records-ingested
	// counter labeled with the selected pass set.
	Metrics *obs.Registry
	// Progress (may be nil) receives live per-shard ingest counts.
	Progress *obs.Progress
}

// ConsumeParallelOpts is the fully general parallel ingest entry point.
// Each shard counts into plain locals and folds in once at completion,
// so totals are shard-count-independent and the ingest loop carries no
// atomics; shard accumulators merge in shard order, so the result is
// identical to a serial Consume for any shard count and either state
// representation.
func ConsumeParallelOpts(topo *workload.Topology, start, end simnet.Time, src dataset.RecordSource, opts IngestOptions) (*Analysis, error) {
	n := len(topo.Clients)
	shards := measure.EffectiveShards(n, opts.Shards)
	reg, prog := opts.Metrics, opts.Progress
	aopts := Options{State: opts.State, Passes: opts.Passes}
	accs := make([]*Analysis, shards)
	errs := make([]error, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		accs[s] = NewAnalysisOpts(topo, start, end, aopts)
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			lo, hi := measure.ShardRange(n, shards, s)
			sc := prog.Shard(s)
			var ingested, sinceFlush int64
			errs[s] = src.Records(lo, hi, func(r *measure.Record) error {
				accs[s].Add(r)
				ingested++
				if sc != nil {
					if sinceFlush++; sinceFlush >= 8192 {
						sc.Add(sinceFlush)
						sinceFlush = 0
					}
				}
				return nil
			})
			sc.Add(sinceFlush)
			reg.Counter(ingestCounterName(accs[s])).Add(ingested)
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	merged := NewAnalysisOpts(topo, start, end, aopts)
	for _, acc := range accs {
		if err := merged.Merge(acc); err != nil {
			return nil, err
		}
	}
	return merged, nil
}

// ingestCounterName labels the records-ingested counter with the
// canonical selected pass set, so runs with different artifact
// selections expose distinguishable series.
func ingestCounterName(a *Analysis) string {
	names := a.Passes()
	strs := make([]string, len(names))
	for i, n := range names {
		strs[i] = string(n)
	}
	return `core_records_ingested_total{passes="` + strings.Join(strs, ",") + `"}`
}
