package core

import (
	"sync"

	"webfail/internal/dataset"
	"webfail/internal/measure"
	"webfail/internal/simnet"
	"webfail/internal/workload"
)

// Consume streams every stored record of src into the accumulator in
// canonical (client-major, per-client time-ordered) order — the
// stored-data counterpart of feeding Add from a live measure.Run.
func (a *Analysis) Consume(src dataset.RecordSource) error {
	return dataset.AllRecords(src, func(r *measure.Record) error {
		a.Add(r)
		return nil
	})
}

// ConsumeParallel ingests src across shards workers, one contiguous
// client range per worker (the same partition measure.RunParallel
// uses), each reading only the chunks overlapping its range into a
// private accumulator; the shards merge in shard order, so the result
// is identical to a serial Consume for any shard count. shards <= 0
// selects GOMAXPROCS. passes selects the analyzer passes every shard
// accumulator is built with (none = all): unselected passes are never
// constructed, in any shard or in the merged result.
func ConsumeParallel(topo *workload.Topology, start, end simnet.Time, src dataset.RecordSource, shards int, passes ...PassName) (*Analysis, error) {
	n := len(topo.Clients)
	shards = measure.EffectiveShards(n, shards)
	accs := make([]*Analysis, shards)
	errs := make([]error, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		accs[s] = NewAnalysisSelected(topo, start, end, passes...)
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			lo, hi := measure.ShardRange(n, shards, s)
			errs[s] = src.Records(lo, hi, func(r *measure.Record) error {
				accs[s].Add(r)
				return nil
			})
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	merged := NewAnalysisSelected(topo, start, end, passes...)
	for _, acc := range accs {
		if err := merged.Merge(acc); err != nil {
			return nil, err
		}
	}
	return merged, nil
}
