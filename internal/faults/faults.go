// Package faults provides the fault-injection substrate of the
// reproduction: timelines of fault episodes attached to named entities
// (clients, LDNS servers, websites, replicas, prefixes), with efficient
// point-in-time queries, plus a Poisson episode generator used to build
// paper-calibrated schedules.
//
// The timeline doubles as the experiment's *ground truth*: the paper could
// only validate its blame-attribution methodology indirectly
// (Section 4.4.6); with injected faults we can also validate it directly,
// comparing inferred client-side/server-side episodes against the schedule
// that actually produced the failures.
package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"webfail/internal/simnet"
)

// Kind classifies what a fault episode breaks.
type Kind uint8

// Fault kinds, named for the component they disable.
const (
	// ClientConnectivity is a last-mile outage at the client: both the
	// LDNS and the wide area become unreachable. Manifests as DNS
	// (LDNS timeout) failures, per Section 4.4.4's observation that
	// client connectivity problems preclude TCP attempts.
	ClientConnectivity Kind = iota
	// LDNSOutage is the client's local DNS server being down or
	// unreachable while the client's own connectivity is fine.
	LDNSOutage
	// AuthDNSOutage makes a website's authoritative DNS unreachable
	// (non-LDNS timeout at clients).
	AuthDNSOutage
	// AuthDNSMisconfig makes a website's authoritative DNS return
	// errors (SERVFAIL/NXDOMAIN) — the brazzil.com/espn.com pattern.
	AuthDNSMisconfig
	// ServerOutage takes a server machine (one replica) off the
	// network: SYNs go unanswered.
	ServerOutage
	// ServerOverload wedges the server application: connections
	// complete but responses hang, stall, or abort.
	ServerOverload
	// ServerHTTPError makes the server return HTTP errors.
	ServerHTTPError
	// PathOutage breaks the network path between a client-side entity
	// and the wide area, or between the wide area and a server-side
	// prefix, depending on which entity it is attached to.
	PathOutage
	// BGPInstability is a routing event for a prefix; it couples a
	// reachability outage with a BGP withdrawal storm whose neighbor
	// fraction is the episode's Severity.
	BGPInstability
	// PermanentBlock models the near-permanent client-site×website
	// failures of Section 4.4.2 (e.g., PlanetLab sites vs Chinese
	// sites); attached to a pair entity.
	PermanentBlock
	// ClientMachineOff marks a client machine as powered off or
	// crashed: it makes NO accesses at all (Section 4.4.4 notes this
	// asymmetry — an off client contributes no failures because it
	// issues no requests).
	ClientMachineOff
)

var kindNames = map[Kind]string{
	ClientConnectivity: "client-connectivity",
	LDNSOutage:         "ldns-outage",
	AuthDNSOutage:      "authdns-outage",
	AuthDNSMisconfig:   "authdns-misconfig",
	ServerOutage:       "server-outage",
	ServerOverload:     "server-overload",
	ServerHTTPError:    "server-http-error",
	PathOutage:         "path-outage",
	BGPInstability:     "bgp-instability",
	PermanentBlock:     "permanent-block",
	ClientMachineOff:   "client-machine-off",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Entity names the thing an episode applies to. Conventional prefixes:
// "client:", "site:" (client site / LDNS scope), "www:" (website),
// "replica:" (server IP), "prefix:", and "pair:client|www" for permanent
// blocks.
type Entity string

// PairEntity builds the entity key for a client-site×website pair.
func PairEntity(clientSite, website string) Entity {
	return Entity("pair:" + clientSite + "|" + website)
}

// Episode is one fault interval.
type Episode struct {
	Entity Entity
	Kind   Kind
	Start  simnet.Time
	// Duration of the fault.
	Duration time.Duration
	// Severity in (0,1]: the probability that an operation touching
	// the faulty component during the episode fails. 1.0 is a hard
	// outage; lower values model flaky, overloaded, or partially
	// filtered components. For BGPInstability it is also the fraction
	// of BGP neighbors that withdraw.
	Severity float64
	// Mode carries kind-specific detail (an httpsim.AppMode for
	// ServerOverload, a dnswire rcode selector for AuthDNSMisconfig).
	Mode uint8
}

// End returns the first instant after the episode.
func (e Episode) End() simnet.Time { return e.Start.Add(e.Duration) }

// Contains reports whether t falls inside the episode.
func (e Episode) Contains(t simnet.Time) bool { return t >= e.Start && t < e.End() }

// Timeline stores episodes indexed by entity, supporting fast
// point-in-time queries. Build with Add calls, then call Freeze once
// before querying (Add after Freeze panics).
type Timeline struct {
	byEntity map[Entity][]Episode
	maxDur   map[Entity]time.Duration
	frozen   bool
}

// NewTimeline creates an empty timeline.
func NewTimeline() *Timeline {
	return &Timeline{
		byEntity: make(map[Entity][]Episode),
		maxDur:   make(map[Entity]time.Duration),
	}
}

// Add inserts an episode.
func (t *Timeline) Add(ep Episode) {
	if t.frozen {
		panic("faults: Add after Freeze")
	}
	if ep.Severity <= 0 || ep.Severity > 1 {
		panic(fmt.Sprintf("faults: episode severity %v out of (0,1]", ep.Severity))
	}
	t.byEntity[ep.Entity] = append(t.byEntity[ep.Entity], ep)
	if ep.Duration > t.maxDur[ep.Entity] {
		t.maxDur[ep.Entity] = ep.Duration
	}
}

// Freeze sorts the timeline for querying. The sort is stable so episodes
// sharing a Start keep their (deterministic) insertion order; an unstable
// sort would make scan's visit order — and thus any severity ties resolved
// by it — vary run to run.
func (t *Timeline) Freeze() {
	for _, eps := range t.byEntity {
		sort.SliceStable(eps, func(i, j int) bool { return eps[i].Start < eps[j].Start })
	}
	t.frozen = true
}

// Active returns the most severe episode of the given kind covering
// instant at for the entity, and whether one exists.
func (t *Timeline) Active(e Entity, kind Kind, at simnet.Time) (Episode, bool) {
	var best Episode
	found := false
	t.scan(e, at, func(ep Episode) {
		if ep.Kind == kind && (!found || ep.Severity > best.Severity) {
			best = ep
			found = true
		}
	})
	return best, found
}

// ActiveAny returns all episodes (any kind) covering instant at.
func (t *Timeline) ActiveAny(e Entity, at simnet.Time) []Episode {
	var out []Episode
	t.scan(e, at, func(ep Episode) { out = append(out, ep) })
	return out
}

// scan visits every episode of e containing at.
func (t *Timeline) scan(e Entity, at simnet.Time, visit func(Episode)) {
	if !t.frozen {
		panic("faults: query before Freeze")
	}
	eps := t.byEntity[e]
	if len(eps) == 0 {
		return
	}
	// Episodes with Start in (at-maxDur, at] can contain at.
	lo := at.Add(-t.maxDur[e]) - 1
	i := sort.Search(len(eps), func(i int) bool { return eps[i].Start > lo })
	for ; i < len(eps) && eps[i].Start <= at; i++ {
		if eps[i].Contains(at) {
			visit(eps[i])
		}
	}
}

// Episodes returns the entity's episodes (sorted once frozen).
func (t *Timeline) Episodes(e Entity) []Episode { return t.byEntity[e] }

// Entities returns all entity names with at least one episode, sorted.
func (t *Timeline) Entities() []Entity {
	out := make([]Entity, 0, len(t.byEntity))
	for e := range t.byEntity {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the total episode count.
func (t *Timeline) Len() int {
	n := 0
	for _, eps := range t.byEntity {
		n += len(eps)
	}
	return n
}

// Process describes a stochastic episode process for one entity: episodes
// arrive Poisson with the given monthly rate; durations are exponential
// with the given mean, clamped to [MinDuration, MaxDuration].
type Process struct {
	Kind Kind
	Mode uint8
	// RatePerMonth is the expected episode count over 744 hours.
	RatePerMonth float64
	MeanDuration time.Duration
	MinDuration  time.Duration
	MaxDuration  time.Duration
	// SeverityLow/High bound the uniformly drawn severity.
	SeverityLow, SeverityHigh float64
}

// Generate draws the process's episodes for entity over [start, end) and
// adds them to the timeline.
func (t *Timeline) Generate(rng *rand.Rand, e Entity, p Process, start, end simnet.Time) {
	if p.RatePerMonth <= 0 {
		return
	}
	span := end.Sub(start)
	const month = 744 * time.Hour
	mean := p.RatePerMonth * float64(span) / float64(month)
	n := poisson(rng, mean)
	for i := 0; i < n; i++ {
		at := start.Add(time.Duration(rng.Int63n(int64(span))))
		dur := time.Duration(rng.ExpFloat64() * float64(p.MeanDuration))
		if dur < p.MinDuration {
			dur = p.MinDuration
		}
		if p.MaxDuration > 0 && dur > p.MaxDuration {
			dur = p.MaxDuration
		}
		if dur <= 0 {
			dur = time.Minute
		}
		sev := p.SeverityLow
		if p.SeverityHigh > p.SeverityLow {
			sev += rng.Float64() * (p.SeverityHigh - p.SeverityLow)
		}
		if sev <= 0 {
			sev = 1.0
		}
		if sev > 1 {
			sev = 1
		}
		t.Add(Episode{
			Entity:   e,
			Kind:     p.Kind,
			Mode:     p.Mode,
			Start:    at,
			Duration: dur,
			Severity: sev,
		})
	}
}

// poisson draws a Poisson variate via inversion of the exponential
// inter-arrival representation (robust for the small means used here).
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	n := 0
	acc := 0.0
	for acc < mean {
		acc += rng.ExpFloat64()
		if acc < mean {
			n++
		}
		if n > 1_000_000 {
			break
		}
	}
	return n
}
