// Package faults provides the fault-injection substrate of the
// reproduction: timelines of fault episodes attached to named entities
// (clients, LDNS servers, websites, replicas, prefixes), with efficient
// point-in-time queries, plus a Poisson episode generator used to build
// paper-calibrated schedules.
//
// The timeline doubles as the experiment's *ground truth*: the paper could
// only validate its blame-attribution methodology indirectly
// (Section 4.4.6); with injected faults we can also validate it directly,
// comparing inferred client-side/server-side episodes against the schedule
// that actually produced the failures.
package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"webfail/internal/simnet"
)

// Kind classifies what a fault episode breaks.
type Kind uint8

// Fault kinds, named for the component they disable.
const (
	// ClientConnectivity is a last-mile outage at the client: both the
	// LDNS and the wide area become unreachable. Manifests as DNS
	// (LDNS timeout) failures, per Section 4.4.4's observation that
	// client connectivity problems preclude TCP attempts.
	ClientConnectivity Kind = iota
	// LDNSOutage is the client's local DNS server being down or
	// unreachable while the client's own connectivity is fine.
	LDNSOutage
	// AuthDNSOutage makes a website's authoritative DNS unreachable
	// (non-LDNS timeout at clients).
	AuthDNSOutage
	// AuthDNSMisconfig makes a website's authoritative DNS return
	// errors (SERVFAIL/NXDOMAIN) — the brazzil.com/espn.com pattern.
	AuthDNSMisconfig
	// ServerOutage takes a server machine (one replica) off the
	// network: SYNs go unanswered.
	ServerOutage
	// ServerOverload wedges the server application: connections
	// complete but responses hang, stall, or abort.
	ServerOverload
	// ServerHTTPError makes the server return HTTP errors.
	ServerHTTPError
	// PathOutage breaks the network path between a client-side entity
	// and the wide area, or between the wide area and a server-side
	// prefix, depending on which entity it is attached to.
	PathOutage
	// BGPInstability is a routing event for a prefix; it couples a
	// reachability outage with a BGP withdrawal storm whose neighbor
	// fraction is the episode's Severity.
	BGPInstability
	// PermanentBlock models the near-permanent client-site×website
	// failures of Section 4.4.2 (e.g., PlanetLab sites vs Chinese
	// sites); attached to a pair entity.
	PermanentBlock
	// ClientMachineOff marks a client machine as powered off or
	// crashed: it makes NO accesses at all (Section 4.4.4 notes this
	// asymmetry — an off client contributes no failures because it
	// issues no requests).
	ClientMachineOff
)

var kindNames = map[Kind]string{
	ClientConnectivity: "client-connectivity",
	LDNSOutage:         "ldns-outage",
	AuthDNSOutage:      "authdns-outage",
	AuthDNSMisconfig:   "authdns-misconfig",
	ServerOutage:       "server-outage",
	ServerOverload:     "server-overload",
	ServerHTTPError:    "server-http-error",
	PathOutage:         "path-outage",
	BGPInstability:     "bgp-instability",
	PermanentBlock:     "permanent-block",
	ClientMachineOff:   "client-machine-off",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// ParseKind resolves a kind's string name (as printed by Kind.String) back
// to the Kind, for declarative scenario specs that reference fault kinds
// by name.
func ParseKind(name string) (Kind, bool) {
	for k, s := range kindNames {
		if s == name {
			return k, true
		}
	}
	return 0, false
}

// numKinds bounds the Kind space for the per-kind episode index built at
// Freeze time.
const numKinds = int(ClientMachineOff) + 1

// Entity names the thing an episode applies to. Conventional prefixes:
// "client:", "site:" (client site / LDNS scope), "www:" (website),
// "replica:" (server IP), "prefix:", and "pair:client|www" for permanent
// blocks.
type Entity string

// EntityID is a dense integer handle for an Entity, assigned by Freeze in
// sorted entity order. Hot paths resolve entities to IDs once (Lookup) and
// then query with ActiveID/ActiveAnyIntoID, which index arrays instead of
// hashing strings.
type EntityID int32

// NoEntity is returned by Lookup for entities with no episodes. Queries
// against it report no active episode.
const NoEntity EntityID = -1

// PairEntity builds the entity key for a client-site×website pair.
func PairEntity(clientSite, website string) Entity {
	return Entity("pair:" + clientSite + "|" + website)
}

// Episode is one fault interval.
type Episode struct {
	Entity Entity
	Kind   Kind
	Start  simnet.Time
	// Duration of the fault.
	Duration time.Duration
	// Severity in (0,1]: the probability that an operation touching
	// the faulty component during the episode fails. 1.0 is a hard
	// outage; lower values model flaky, overloaded, or partially
	// filtered components. For BGPInstability it is also the fraction
	// of BGP neighbors that withdraw.
	Severity float64
	// Mode carries kind-specific detail (an httpsim.AppMode for
	// ServerOverload, a dnswire rcode selector for AuthDNSMisconfig).
	Mode uint8
}

// End returns the first instant after the episode.
func (e Episode) End() simnet.Time { return e.Start.Add(e.Duration) }

// Contains reports whether t falls inside the episode.
func (e Episode) Contains(t simnet.Time) bool { return t >= e.Start && t < e.End() }

// Timeline stores episodes indexed by entity, supporting fast
// point-in-time queries. Build with Add calls, then call Freeze once
// before querying (Add after Freeze panics). Freeze also interns every
// entity into a dense EntityID and builds a per-(entity, kind) episode
// index, so steady-state queries through Lookup + ActiveID cost two array
// indexings and a binary search — no string hashing, no kind-filter scan.
type Timeline struct {
	byEntity map[Entity][]Episode
	maxDur   map[Entity]time.Duration
	frozen   bool

	// Interned index, built by Freeze. entities doubles as the cached
	// result of Entities(). kindEps/kindMax are flattened
	// [entity x kind] tables indexed by int(id)*numKinds + int(kind);
	// eps/epsMax are the per-entity all-kind views used by the
	// ActiveAny family.
	ids      map[Entity]EntityID
	entities []Entity
	eps      [][]Episode
	epsMax   []time.Duration
	kindEps  [][]Episode
	kindMax  []time.Duration
}

// NewTimeline creates an empty timeline.
func NewTimeline() *Timeline {
	return &Timeline{
		byEntity: make(map[Entity][]Episode),
		maxDur:   make(map[Entity]time.Duration),
	}
}

// Add inserts an episode.
func (t *Timeline) Add(ep Episode) {
	if t.frozen {
		panic("faults: Add after Freeze")
	}
	if ep.Severity <= 0 || ep.Severity > 1 {
		panic(fmt.Sprintf("faults: episode severity %v out of (0,1]", ep.Severity))
	}
	if int(ep.Kind) >= numKinds {
		panic(fmt.Sprintf("faults: unknown kind %d", ep.Kind))
	}
	t.byEntity[ep.Entity] = append(t.byEntity[ep.Entity], ep)
	if ep.Duration > t.maxDur[ep.Entity] {
		t.maxDur[ep.Entity] = ep.Duration
	}
}

// Freeze sorts the timeline for querying and builds the interned index.
// The sort is stable so episodes sharing a Start keep their
// (deterministic) insertion order; an unstable sort would make the visit
// order — and thus any severity ties resolved by it — vary run to run.
// EntityIDs are assigned in sorted entity order, so two timelines holding
// the same entity set intern identically.
func (t *Timeline) Freeze() {
	for _, eps := range t.byEntity {
		sort.SliceStable(eps, func(i, j int) bool { return eps[i].Start < eps[j].Start })
	}
	t.entities = make([]Entity, 0, len(t.byEntity))
	for e := range t.byEntity {
		t.entities = append(t.entities, e)
	}
	sort.Slice(t.entities, func(i, j int) bool { return t.entities[i] < t.entities[j] })
	t.ids = make(map[Entity]EntityID, len(t.entities))
	t.eps = make([][]Episode, len(t.entities))
	t.epsMax = make([]time.Duration, len(t.entities))
	t.kindEps = make([][]Episode, len(t.entities)*numKinds)
	t.kindMax = make([]time.Duration, len(t.entities)*numKinds)
	for id, e := range t.entities {
		t.ids[e] = EntityID(id)
		eps := t.byEntity[e]
		t.eps[id] = eps
		t.epsMax[id] = t.maxDur[e]
		for _, ep := range eps {
			idx := id*numKinds + int(ep.Kind)
			t.kindEps[idx] = append(t.kindEps[idx], ep)
			if ep.Duration > t.kindMax[idx] {
				t.kindMax[idx] = ep.Duration
			}
		}
	}
	t.frozen = true
}

// Lookup resolves an entity to its interned ID, or NoEntity when the
// entity has no episodes. Resolve once outside hot loops, then query with
// ActiveID / ActiveAnyIntoID.
func (t *Timeline) Lookup(e Entity) EntityID {
	if !t.frozen {
		panic("faults: query before Freeze")
	}
	if id, ok := t.ids[e]; ok {
		return id
	}
	return NoEntity
}

// Active returns the most severe episode of the given kind covering
// instant at for the entity, and whether one exists. It is a thin wrapper
// over the interned path; hot loops should use Lookup + ActiveID.
func (t *Timeline) Active(e Entity, kind Kind, at simnet.Time) (Episode, bool) {
	return t.ActiveID(t.Lookup(e), kind, at)
}

// ActiveID is the interned-handle form of Active: two array indexings plus
// a binary search, no string hashing, no allocation. Querying NoEntity
// reports no episode.
func (t *Timeline) ActiveID(id EntityID, kind Kind, at simnet.Time) (Episode, bool) {
	if !t.frozen {
		panic("faults: query before Freeze")
	}
	if id < 0 || int(kind) >= numKinds {
		return Episode{}, false
	}
	idx := int(id)*numKinds + int(kind)
	eps := t.kindEps[idx]
	if len(eps) == 0 {
		return Episode{}, false
	}
	// Episodes with Start in (at-maxDur, at] can contain at.
	i := searchAfter(eps, at.Add(-t.kindMax[idx])-1)
	var best Episode
	found := false
	for ; i < len(eps) && eps[i].Start <= at; i++ {
		if eps[i].Contains(at) && (!found || eps[i].Severity > best.Severity) {
			best = eps[i]
			found = true
		}
	}
	return best, found
}

// ActiveAny returns all episodes (any kind) covering instant at.
func (t *Timeline) ActiveAny(e Entity, at simnet.Time) []Episode {
	return t.ActiveAnyInto(e, at, nil)
}

// ActiveAnyInto appends every episode (any kind) covering instant at to
// buf and returns the extended slice. Passing a reused buf[:0] makes the
// query allocation-free in steady state.
func (t *Timeline) ActiveAnyInto(e Entity, at simnet.Time, buf []Episode) []Episode {
	return t.ActiveAnyIntoID(t.Lookup(e), at, buf)
}

// ActiveAnyIntoID is the interned-handle form of ActiveAnyInto. Episodes
// are appended in start-sorted (insertion-stable) order, the same order
// Active resolves severity ties in.
func (t *Timeline) ActiveAnyIntoID(id EntityID, at simnet.Time, buf []Episode) []Episode {
	if !t.frozen {
		panic("faults: query before Freeze")
	}
	if id < 0 {
		return buf
	}
	eps := t.eps[id]
	if len(eps) == 0 {
		return buf
	}
	i := searchAfter(eps, at.Add(-t.epsMax[id])-1)
	for ; i < len(eps) && eps[i].Start <= at; i++ {
		if eps[i].Contains(at) {
			buf = append(buf, eps[i])
		}
	}
	return buf
}

// searchAfter returns the first index in the start-sorted eps whose Start
// exceeds lo (hand-rolled binary search: closure-free for the hot path).
func searchAfter(eps []Episode, lo simnet.Time) int {
	i, j := 0, len(eps)
	for i < j {
		h := int(uint(i+j) >> 1)
		if eps[h].Start <= lo {
			i = h + 1
		} else {
			j = h
		}
	}
	return i
}

// Episodes returns the entity's episodes (sorted once frozen).
func (t *Timeline) Episodes(e Entity) []Episode { return t.byEntity[e] }

// Entities returns all entity names with at least one episode, sorted.
// Once frozen, the slice is computed exactly once (at Freeze) and shared —
// callers must not mutate it.
func (t *Timeline) Entities() []Entity {
	if t.frozen {
		return t.entities
	}
	out := make([]Entity, 0, len(t.byEntity))
	for e := range t.byEntity {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the total episode count.
func (t *Timeline) Len() int {
	n := 0
	for _, eps := range t.byEntity {
		n += len(eps)
	}
	return n
}

// Process describes a stochastic episode process for one entity: episodes
// arrive Poisson with the given monthly rate; durations are exponential
// with the given mean, clamped to [MinDuration, MaxDuration].
type Process struct {
	Kind Kind
	Mode uint8
	// RatePerMonth is the expected episode count over 744 hours.
	RatePerMonth float64
	MeanDuration time.Duration
	MinDuration  time.Duration
	MaxDuration  time.Duration
	// SeverityLow/High bound the uniformly drawn severity.
	SeverityLow, SeverityHigh float64
}

// Generate draws the process's episodes for entity over [start, end) and
// adds them to the timeline.
func (t *Timeline) Generate(rng *rand.Rand, e Entity, p Process, start, end simnet.Time) {
	if p.RatePerMonth <= 0 {
		return
	}
	span := end.Sub(start)
	const month = 744 * time.Hour
	mean := p.RatePerMonth * float64(span) / float64(month)
	n := poisson(rng, mean)
	for i := 0; i < n; i++ {
		at := start.Add(time.Duration(rng.Int63n(int64(span))))
		dur := time.Duration(rng.ExpFloat64() * float64(p.MeanDuration))
		if dur < p.MinDuration {
			dur = p.MinDuration
		}
		if p.MaxDuration > 0 && dur > p.MaxDuration {
			dur = p.MaxDuration
		}
		if dur <= 0 {
			dur = time.Minute
		}
		sev := p.SeverityLow
		if p.SeverityHigh > p.SeverityLow {
			sev += rng.Float64() * (p.SeverityHigh - p.SeverityLow)
		}
		if sev <= 0 {
			sev = 1.0
		}
		if sev > 1 {
			sev = 1
		}
		t.Add(Episode{
			Entity:   e,
			Kind:     p.Kind,
			Mode:     p.Mode,
			Start:    at,
			Duration: dur,
			Severity: sev,
		})
	}
}

// poisson draws a Poisson variate via inversion of the exponential
// inter-arrival representation (robust for the small means used here).
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	n := 0
	acc := 0.0
	for acc < mean {
		acc += rng.ExpFloat64()
		if acc < mean {
			n++
		}
		if n > 1_000_000 {
			break
		}
	}
	return n
}
