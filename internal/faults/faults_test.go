package faults

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"webfail/internal/simnet"
)

func hour(h int64) simnet.Time { return simnet.FromHours(h) }

func TestTimelineBasic(t *testing.T) {
	tl := NewTimeline()
	tl.Add(Episode{Entity: "client:a", Kind: ClientConnectivity, Start: hour(5), Duration: 2 * time.Hour, Severity: 1})
	tl.Add(Episode{Entity: "client:a", Kind: LDNSOutage, Start: hour(6), Duration: time.Hour, Severity: 0.5})
	tl.Add(Episode{Entity: "www:x", Kind: ServerOutage, Start: hour(5), Duration: time.Hour, Severity: 1})
	tl.Freeze()

	if ep, ok := tl.Active("client:a", ClientConnectivity, hour(5).Add(time.Minute)); !ok || ep.Severity != 1 {
		t.Errorf("Active = %+v, %v", ep, ok)
	}
	if _, ok := tl.Active("client:a", ClientConnectivity, hour(4)); ok {
		t.Error("active before start")
	}
	if _, ok := tl.Active("client:a", ClientConnectivity, hour(7)); ok {
		t.Error("active after end (end-exclusive)")
	}
	if _, ok := tl.Active("client:a", ServerOutage, hour(5)); ok {
		t.Error("wrong kind matched")
	}
	if _, ok := tl.Active("client:b", ClientConnectivity, hour(5)); ok {
		t.Error("wrong entity matched")
	}
	if got := tl.ActiveAny("client:a", hour(6).Add(time.Minute)); len(got) != 2 {
		t.Errorf("ActiveAny = %d, want 2", len(got))
	}
	if tl.Len() != 3 {
		t.Errorf("Len = %d", tl.Len())
	}
	if es := tl.Entities(); len(es) != 2 || es[0] != "client:a" {
		t.Errorf("Entities = %v", es)
	}
}

func TestTimelineMostSevereWins(t *testing.T) {
	tl := NewTimeline()
	tl.Add(Episode{Entity: "www:x", Kind: ServerOutage, Start: hour(1), Duration: 10 * time.Hour, Severity: 0.3})
	tl.Add(Episode{Entity: "www:x", Kind: ServerOutage, Start: hour(2), Duration: time.Hour, Severity: 0.9})
	tl.Freeze()
	ep, ok := tl.Active("www:x", ServerOutage, hour(2).Add(30*time.Minute))
	if !ok || ep.Severity != 0.9 {
		t.Errorf("got %+v", ep)
	}
	// After the short severe episode, the long mild one still applies.
	ep, ok = tl.Active("www:x", ServerOutage, hour(4))
	if !ok || ep.Severity != 0.3 {
		t.Errorf("got %+v", ep)
	}
}

func TestTimelineOverlapScanBound(t *testing.T) {
	// A long episode followed by many short ones: the scan must still
	// find the long one via the max-duration bound.
	tl := NewTimeline()
	tl.Add(Episode{Entity: "e", Kind: PathOutage, Start: hour(0), Duration: 100 * time.Hour, Severity: 1})
	for i := int64(1); i < 50; i++ {
		tl.Add(Episode{Entity: "e", Kind: ServerOutage, Start: hour(i), Duration: time.Minute, Severity: 1})
	}
	tl.Freeze()
	if _, ok := tl.Active("e", PathOutage, hour(99)); !ok {
		t.Error("long episode missed by scan")
	}
}

func TestFreezeDiscipline(t *testing.T) {
	tl := NewTimeline()
	tl.Add(Episode{Entity: "e", Kind: PathOutage, Start: 0, Duration: time.Hour, Severity: 1})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("query before Freeze did not panic")
			}
		}()
		tl.Active("e", PathOutage, 0)
	}()
	tl.Freeze()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Add after Freeze did not panic")
			}
		}()
		tl.Add(Episode{Entity: "e", Kind: PathOutage, Start: 0, Duration: time.Hour, Severity: 1})
	}()
}

func TestBadSeverityPanics(t *testing.T) {
	tl := NewTimeline()
	for _, sev := range []float64{0, -1, 1.5} {
		sev := sev
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("severity %v accepted", sev)
				}
			}()
			tl.Add(Episode{Entity: "e", Kind: PathOutage, Start: 0, Duration: time.Hour, Severity: sev})
		}()
	}
}

func TestGenerateRate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tl := NewTimeline()
	p := Process{
		Kind:         ServerOutage,
		RatePerMonth: 10,
		MeanDuration: 30 * time.Minute,
		MinDuration:  time.Minute,
		MaxDuration:  4 * time.Hour,
		SeverityLow:  1, SeverityHigh: 1,
	}
	// Generate over 100 "months" worth for statistical stability.
	const months = 100
	tl.Generate(rng, "www:x", p, 0, simnet.FromHours(744*months))
	got := tl.Len()
	want := 10 * months
	if got < want*8/10 || got > want*12/10 {
		t.Errorf("episodes = %d, want ~%d", got, want)
	}
	tl.Freeze()
	for _, ep := range tl.Episodes("www:x") {
		if ep.Duration < time.Minute || ep.Duration > 4*time.Hour {
			t.Fatalf("duration %v out of bounds", ep.Duration)
		}
		if ep.Severity != 1 {
			t.Fatalf("severity %v", ep.Severity)
		}
	}
}

func TestGenerateZeroRate(t *testing.T) {
	tl := NewTimeline()
	tl.Generate(rand.New(rand.NewSource(1)), "e", Process{Kind: ServerOutage, RatePerMonth: 0}, 0, hour(744))
	if tl.Len() != 0 {
		t.Errorf("episodes = %d", tl.Len())
	}
}

func TestGenerateSeverityRange(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tl := NewTimeline()
	p := Process{
		Kind: ServerOverload, RatePerMonth: 200,
		MeanDuration: time.Hour, SeverityLow: 0.2, SeverityHigh: 0.6,
	}
	tl.Generate(rng, "e", p, 0, hour(744))
	tl.Freeze()
	for _, ep := range tl.Episodes("e") {
		if ep.Severity < 0.2 || ep.Severity > 0.6 {
			t.Fatalf("severity %v outside [0.2,0.6]", ep.Severity)
		}
	}
}

func TestGenerateDeterminism(t *testing.T) {
	gen := func() []Episode {
		rng := rand.New(rand.NewSource(7))
		tl := NewTimeline()
		tl.Generate(rng, "e", Process{Kind: PathOutage, RatePerMonth: 50, MeanDuration: time.Hour, SeverityLow: 1, SeverityHigh: 1}, 0, hour(744))
		tl.Freeze()
		return tl.Episodes("e")
	}
	a, b := gen(), gen()
	if len(a) != len(b) {
		t.Fatalf("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("episode %d differs", i)
		}
	}
}

func TestPairEntity(t *testing.T) {
	if PairEntity("nwu.edu", "www.mp3.com") != "pair:nwu.edu|www.mp3.com" {
		t.Error("pair entity format")
	}
}

func TestKindStrings(t *testing.T) {
	for k := ClientConnectivity; k <= ClientMachineOff; k++ {
		if k.String() == "" || k.String()[0] == 'K' {
			t.Errorf("kind %d has no name", k)
		}
	}
	if Kind(200).String() != "Kind(200)" {
		t.Error("unknown kind string")
	}
}

func TestLookupUnknownEntity(t *testing.T) {
	tl := NewTimeline()
	tl.Add(Episode{Entity: "known", Kind: PathOutage, Start: hour(1), Duration: time.Hour, Severity: 1})
	tl.Freeze()
	if id := tl.Lookup("absent"); id != NoEntity {
		t.Errorf("Lookup(absent) = %d, want NoEntity", id)
	}
	if _, ok := tl.ActiveID(NoEntity, PathOutage, hour(1)); ok {
		t.Error("ActiveID(NoEntity) reported an episode")
	}
	if got := tl.ActiveAnyIntoID(NoEntity, hour(1), nil); got != nil {
		t.Errorf("ActiveAnyIntoID(NoEntity) = %v, want nil", got)
	}
	// Out-of-range kinds are rejected, not indexed.
	id := tl.Lookup("known")
	if _, ok := tl.ActiveID(id, Kind(200), hour(1)); ok {
		t.Error("ActiveID with out-of-range kind reported an episode")
	}
}

func TestEntityIDStability(t *testing.T) {
	// IDs are assigned in sorted-entity order at Freeze, so two timelines
	// built from the same entity set — regardless of insertion order —
	// intern every entity to the same handle.
	build := func(order []Entity) *Timeline {
		tl := NewTimeline()
		for _, e := range order {
			tl.Add(Episode{Entity: e, Kind: ServerOutage, Start: hour(1), Duration: time.Hour, Severity: 1})
		}
		tl.Freeze()
		return tl
	}
	ents := []Entity{"www:x", "client:a", "pair:a|x", "ldns:a", "prefix:1.2.3.0/24"}
	rev := make([]Entity, len(ents))
	for i, e := range ents {
		rev[len(ents)-1-i] = e
	}
	a, b := build(ents), build(rev)
	for _, e := range ents {
		if a.Lookup(e) != b.Lookup(e) {
			t.Errorf("entity %q: id %d vs %d across insertion orders", e, a.Lookup(e), b.Lookup(e))
		}
	}
	// And the handles are dense: exactly len(ents) distinct IDs in [0, n).
	seen := map[EntityID]bool{}
	for _, e := range ents {
		id := a.Lookup(e)
		if id < 0 || int(id) >= len(ents) || seen[id] {
			t.Errorf("entity %q: id %d not dense/unique", e, id)
		}
		seen[id] = true
	}
}

func TestActiveIDMatchesActive(t *testing.T) {
	// Property: over randomized timelines, the interned path returns
	// exactly what the string-keyed wrapper returns, for every entity,
	// kind, and query instant.
	entities := []Entity{"a", "b", "c"}
	kinds := []Kind{ClientConnectivity, PathOutage, ServerOutage, BGPInstability}
	f := func(seed int64, queries []uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		tl := NewTimeline()
		n := 5 + rng.Intn(40)
		for i := 0; i < n; i++ {
			tl.Add(Episode{
				Entity:   entities[rng.Intn(len(entities))],
				Kind:     kinds[rng.Intn(len(kinds))],
				Start:    simnet.Time(rng.Intn(5000)) * simnet.Time(time.Minute),
				Duration: time.Duration(1+rng.Intn(600)) * time.Minute,
				Severity: 0.1 + 0.9*rng.Float64(),
			})
		}
		tl.Freeze()
		for _, q := range queries {
			at := simnet.Time(q) * simnet.Time(time.Minute)
			for _, e := range entities {
				id := tl.Lookup(e)
				for _, k := range kinds {
					wantEp, wantOK := tl.Active(e, k, at)
					gotEp, gotOK := tl.ActiveID(id, k, at)
					if wantOK != gotOK || wantEp != gotEp {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestActiveAnyIntoEquivalence(t *testing.T) {
	tl := NewTimeline()
	for i := int64(0); i < 20; i++ {
		tl.Add(Episode{Entity: "e", Kind: Kind(i % 4), Start: hour(i % 7), Duration: 3 * time.Hour, Severity: 1})
	}
	tl.Freeze()
	buf := make([]Episode, 0, 4)
	for h := int64(0); h < 12; h++ {
		want := tl.ActiveAny("e", hour(h))
		buf = tl.ActiveAnyInto("e", hour(h), buf[:0])
		if len(buf) != len(want) {
			t.Fatalf("hour %d: ActiveAnyInto = %d episodes, ActiveAny = %d", h, len(buf), len(want))
		}
		for i := range buf {
			if buf[i] != want[i] {
				t.Fatalf("hour %d episode %d: %+v != %+v", h, i, buf[i], want[i])
			}
		}
	}
	// Append semantics: existing buf contents are preserved.
	sentinel := Episode{Entity: "sentinel", Kind: PathOutage, Start: hour(999), Duration: time.Hour, Severity: 1}
	got := tl.ActiveAnyInto("e", hour(1), []Episode{sentinel})
	if len(got) == 0 || got[0] != sentinel {
		t.Error("ActiveAnyInto clobbered the existing buffer prefix")
	}
}

func TestActivePropertyConsistency(t *testing.T) {
	// Active(e,k,t) agrees with a brute-force scan over all episodes.
	f := func(starts []uint16, durs []uint8, query uint16) bool {
		tl := NewTimeline()
		var eps []Episode
		for i := range starts {
			durRaw := uint8(7)
			if len(durs) > 0 {
				durRaw = durs[i%len(durs)]
			}
			d := time.Duration(int(durRaw)+1) * time.Minute
			ep := Episode{
				Entity:   "e",
				Kind:     PathOutage,
				Start:    simnet.Time(starts[i]) * simnet.Time(time.Minute),
				Duration: d,
				Severity: 1,
			}
			eps = append(eps, ep)
			tl.Add(ep)
		}
		tl.Freeze()
		at := simnet.Time(query) * simnet.Time(time.Minute)
		_, got := tl.Active("e", PathOutage, at)
		want := false
		for _, ep := range eps {
			if ep.Contains(at) {
				want = true
			}
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
