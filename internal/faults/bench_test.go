package faults

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"webfail/internal/simnet"
)

// benchTimeline builds a frozen timeline shaped like a real scenario's:
// a few hundred entities, a handful of kinds, episodes scattered over a
// month.
func benchTimeline(nEntities, epsPerEntity int) (*Timeline, []Entity) {
	rng := rand.New(rand.NewSource(42))
	tl := NewTimeline()
	ents := make([]Entity, nEntities)
	kinds := []Kind{ClientConnectivity, PathOutage, ServerOutage, BGPInstability}
	for i := range ents {
		ents[i] = Entity(fmt.Sprintf("www:site-%03d.example.com", i))
		for j := 0; j < epsPerEntity; j++ {
			tl.Add(Episode{
				Entity:   ents[i],
				Kind:     kinds[rng.Intn(len(kinds))],
				Start:    simnet.Time(rng.Intn(744)) * simnet.Time(time.Hour),
				Duration: time.Duration(1+rng.Intn(240)) * time.Minute,
				Severity: 1,
			})
		}
	}
	tl.Freeze()
	return tl, ents
}

// BenchmarkTimelineActive compares the string-keyed query path against
// the interned-handle path the fast-mode evaluator uses.
func BenchmarkTimelineActive(b *testing.B) {
	tl, ents := benchTimeline(300, 12)
	at := simnet.Time(372) * simnet.Time(time.Hour) // mid-month

	b.Run("string", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tl.Active(ents[i%len(ents)], PathOutage, at)
		}
	})
	b.Run("interned", func(b *testing.B) {
		ids := make([]EntityID, len(ents))
		for i, e := range ents {
			ids[i] = tl.Lookup(e)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tl.ActiveID(ids[i%len(ids)], PathOutage, at)
		}
	})
	b.Run("any-into", func(b *testing.B) {
		ids := make([]EntityID, len(ents))
		for i, e := range ents {
			ids[i] = tl.Lookup(e)
		}
		buf := make([]Episode, 0, 8)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf = tl.ActiveAnyIntoID(ids[i%len(ids)], at, buf[:0])
		}
	})
}
