package obs

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("txns_total")
	c.Add(40)
	c.Inc()
	c.Inc()
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if again := r.Counter("txns_total"); again != c {
		t.Fatal("second Counter call returned a different instance")
	}
	g := r.Gauge("depth")
	g.Set(3.5)
	g.Add(-1.25)
	if got := g.Value(); got != 2.25 {
		t.Fatalf("gauge = %v, want 2.25", got)
	}
}

func TestNilRegistryHandsOutWorkingNilMetrics(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Add(5)
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter reads nonzero")
	}
	g := r.WallGauge("y")
	g.Set(1)
	g.Add(2)
	if g.Value() != 0 {
		t.Fatal("nil gauge reads nonzero")
	}
	h := r.Histogram("z", []float64{1, 2})
	h.Observe(1.5)
	if h.Count() != 0 {
		t.Fatal("nil histogram counted an observation")
	}
	snap := r.Snapshot()
	if len(snap.Deterministic.Counters) != 0 || len(snap.Wall.Counters) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
	var sp Span
	sp = r.Span("phase")
	sp.End() // must not panic
}

// TestHistogramBucketBoundaries pins the boundary semantics: an
// observation equal to a bucket's upper bound lands in that bucket
// (v <= bound), anything above the last bound lands in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 10, 100})
	for _, v := range []float64{
		0,    // -> bucket le=1
		1,    // boundary: -> bucket le=1
		1.01, // -> bucket le=10
		10,   // boundary: -> bucket le=10
		99.9, // -> bucket le=100
		100,  // boundary: -> bucket le=100
		101,  // -> +Inf
		1e9,  // -> +Inf
	} {
		h.Observe(v)
	}
	hs := r.Snapshot().Deterministic.Histograms["lat"]
	want := []int64{2, 2, 2, 2}
	if !reflect.DeepEqual(hs.Counts, want) {
		t.Fatalf("bucket counts = %v, want %v", hs.Counts, want)
	}
	if hs.Count != 8 {
		t.Fatalf("count = %d, want 8", hs.Count)
	}
	if want := 0 + 1 + 1.01 + 10 + 99.9 + 100 + 101 + 1e9; hs.Sum != want {
		t.Fatalf("sum = %v, want %v", hs.Sum, want)
	}
}

func TestRegistrationMismatchPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	r.Counter("a")
	r.WallGauge("b")
	r.Histogram("h", []float64{1, 2})
	mustPanic("kind change", func() { r.Gauge("a") })
	mustPanic("class change", func() { r.WallCounter("a") })
	mustPanic("gauge class change", func() { r.Gauge("b") })
	mustPanic("bounds change", func() { r.Histogram("h", []float64{1, 3}) })
	mustPanic("hist class change", func() { r.WallHistogram("h", []float64{1, 2}) })
	mustPanic("unsorted bounds", func() { r.Histogram("h2", []float64{2, 1}) })
}

// TestSnapshotJSONRoundTrip checks the snapshot survives
// encoding/json unchanged — the JSON exposition is lossless.
func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("det_c").Add(7)
	r.WallCounter("wall_c").Add(9)
	r.Gauge("det_g").Set(1.5)
	r.WallGauge("wall_g").Set(-2.75)
	h := r.Histogram("det_h", []float64{1, 2, 4})
	h.Observe(0.5)
	h.Observe(3)
	h.Observe(100)
	r.WallHistogram("wall_h", []float64{0.1}).Observe(0.05)

	snap := r.Snapshot()
	blob, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, back) {
		t.Fatalf("snapshot did not round-trip:\n before %+v\n after  %+v", snap, back)
	}
	if snap.Deterministic.Counters["det_c"] != 7 || snap.Wall.Counters["wall_c"] != 9 {
		t.Fatal("counters landed in the wrong section")
	}
	if snap.Deterministic.Gauges["det_g"] != 1.5 || snap.Wall.Gauges["wall_g"] != -2.75 {
		t.Fatal("gauges landed in the wrong section")
	}
	if _, ok := snap.Wall.Histograms["wall_h"]; !ok {
		t.Fatal("wall histogram missing from wall section")
	}
}

// randomShardRegistry builds one shard's registry from a seeded rng,
// drawing from a fixed metric-name vocabulary so shards overlap.
func randomShardRegistry(rng *rand.Rand) *Registry {
	r := NewRegistry()
	bounds := []float64{1, 8, 64}
	for i := 0; i < 8; i++ {
		switch rng.Intn(3) {
		case 0:
			name := []string{"c0", "c1", "c2"}[rng.Intn(3)]
			r.Counter(name).Add(rng.Int63n(1000))
		case 1:
			name := []string{"g0", "g1"}[rng.Intn(2)]
			r.Gauge(name).Add(float64(rng.Intn(16)))
		default:
			name := []string{"h0", "h1"}[rng.Intn(2)]
			r.Histogram(name, bounds).Observe(float64(rng.Intn(128)))
		}
	}
	r.WallCounter("wc").Add(rng.Int63n(10))
	return r
}

// TestMergeShardOrderIndependent is the property test behind the
// "registries merge like analysis shards" contract: folding the same
// shard registries in any permutation yields an identical snapshot.
func TestMergeShardOrderIndependent(t *testing.T) {
	const shards = 6
	build := func() []*Registry {
		regs := make([]*Registry, shards)
		for i := range regs {
			regs[i] = randomShardRegistry(rand.New(rand.NewSource(int64(1000 + i))))
		}
		return regs
	}
	var want Snapshot
	for trial := 0; trial < 20; trial++ {
		regs := build()
		perm := rand.New(rand.NewSource(int64(trial))).Perm(shards)
		merged := NewRegistry()
		for _, i := range perm {
			if err := merged.Merge(regs[i]); err != nil {
				t.Fatalf("trial %d: merge shard %d: %v", trial, i, err)
			}
		}
		got := merged.Snapshot()
		if trial == 0 {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (order %v): merged snapshot differs:\n got  %+v\n want %+v", trial, perm, got, want)
		}
	}
}

func TestMergeSums(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("c").Add(3)
	b.Counter("c").Add(4)
	a.Gauge("g").Set(1.5)
	b.Gauge("g").Set(2.5)
	ah := a.Histogram("h", []float64{10})
	bh := b.Histogram("h", []float64{10})
	ah.Observe(5)
	bh.Observe(50)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	snap := a.Snapshot().Deterministic
	if snap.Counters["c"] != 7 {
		t.Fatalf("merged counter = %d, want 7", snap.Counters["c"])
	}
	if snap.Gauges["g"] != 4 {
		t.Fatalf("merged gauge = %v, want 4 (gauges sum)", snap.Gauges["g"])
	}
	hs := snap.Histograms["h"]
	if !reflect.DeepEqual(hs.Counts, []int64{1, 1}) || hs.Count != 2 || hs.Sum != 55 {
		t.Fatalf("merged histogram = %+v", hs)
	}
}

// TestMergeMismatchLeavesReceiverUntouched checks the validate-then-
// apply contract: any mismatch rejects the whole merge.
func TestMergeMismatchLeavesReceiverUntouched(t *testing.T) {
	cases := []struct {
		name string
		src  func() *Registry
	}{
		{"kind", func() *Registry { s := NewRegistry(); s.Gauge("c").Set(1); s.Counter("extra").Add(9); return s }},
		{"bounds", func() *Registry {
			s := NewRegistry()
			s.Histogram("h", []float64{1, 2}).Observe(1)
			s.Counter("extra").Add(9)
			return s
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRegistry()
			r.Counter("c").Add(5)
			r.Histogram("h", []float64{1, 99}).Observe(1)
			before := r.Snapshot()
			if err := r.Merge(tc.src()); err == nil {
				t.Fatal("merge with mismatched source succeeded")
			}
			if got := r.Snapshot(); !reflect.DeepEqual(got, before) {
				t.Fatalf("failed merge modified the receiver:\n before %+v\n after  %+v", before, got)
			}
		})
	}
	if err := NewRegistry().Merge(nil); err != nil {
		t.Fatalf("merge of nil source should no-op, got %v", err)
	}
	r := NewRegistry()
	if err := r.Merge(r); err == nil {
		t.Fatal("self-merge should error")
	}
}

// TestConcurrentUpdates exercises the registry from many goroutines —
// meaningful primarily under -race — then checks the totals, which
// must be exact (atomic, no lost updates).
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// get-or-create races with other workers on purpose.
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h", []float64{0.5}).Observe(float64(i % 2))
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	snap := r.Snapshot().Deterministic
	const total = workers * perWorker
	if snap.Counters["c"] != total {
		t.Fatalf("counter = %d, want %d", snap.Counters["c"], total)
	}
	if snap.Gauges["g"] != total {
		t.Fatalf("gauge = %v, want %d", snap.Gauges["g"], total)
	}
	if hs := snap.Histograms["h"]; hs.Count != total {
		t.Fatalf("histogram count = %d, want %d", hs.Count, total)
	}
}
