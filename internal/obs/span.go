package obs

import "time"

// Span is a lightweight phase timer: Registry.Span starts it, End
// records the elapsed wall time. Spans cover pipeline stages ("run/
// fast-mode", "ingest", "report"), not per-transaction work — starting
// one costs a clock read, ending one costs two registry updates.
type Span struct {
	r     *Registry
	name  string
	start time.Time
}

// Span starts a phase timer. Span is a value (no allocation), and a
// span from a nil registry still measures time but records nothing.
func (r *Registry) Span(name string) Span {
	return Span{r: r, name: name, start: time.Now()}
}

// End records the span's wall-clock duration and completion count into
// the registry's wall section (`span_seconds{span="name"}` accumulates
// seconds, `span_count{span="name"}` counts completions) and returns
// the elapsed time.
func (s Span) End() time.Duration {
	d := time.Since(s.start)
	if s.r != nil {
		s.r.WallGauge(`span_seconds{span="` + s.name + `"}`).Add(d.Seconds())
		s.r.WallCounter(`span_count{span="` + s.name + `"}`).Inc()
	}
	return d
}
