package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
)

func exemplar(class string, major, minor int64) TraceExemplar {
	return TraceExemplar{
		Class: class,
		Label: fmt.Sprintf("c%d x s%d", major, minor),
		Major: major,
		Minor: minor,
		Spans: []TraceSpan{{Name: "txn", Start: major * 1e9, Dur: 5e8, Outcome: class}},
	}
}

func TestTracerKeepsKSmallestKeys(t *testing.T) {
	tr := NewTracer(2)
	// Arrive out of canonical order, as packet mode's event loop does.
	if !tr.Add(exemplar("tcp:no-connection", 5, 0)) {
		t.Fatal("first add rejected")
	}
	if !tr.Add(exemplar("tcp:no-connection", 1, 3)) {
		t.Fatal("smaller key rejected")
	}
	if !tr.Add(exemplar("tcp:no-connection", 1, 1)) {
		t.Fatal("smaller key rejected with full list")
	}
	if tr.Add(exemplar("tcp:no-connection", 9, 0)) {
		t.Fatal("key beyond the cap was kept")
	}
	got := tr.Exemplars("tcp:no-connection")
	if len(got) != 2 || got[0].Major != 1 || got[0].Minor != 1 || got[1].Minor != 3 {
		t.Fatalf("kept set = %+v, want keys (1,1),(1,3)", got)
	}
	if tr.Admit("tcp:no-connection", 2, 0) {
		t.Error("Admit accepted a key larger than the kept maximum")
	}
	if !tr.Admit("tcp:no-connection", 1, 0) {
		t.Error("Admit rejected a key smaller than the kept maximum")
	}
	if !tr.Admit("dns:error-response", 99, 0) {
		t.Error("Admit rejected a new class")
	}
}

func TestTracerMergeShardInvariant(t *testing.T) {
	// Build the same exemplar population three ways: serially, split in
	// two shards, split in four; all merges must agree byte-for-byte.
	keys := [][2]int64{{0, 0}, {0, 1}, {1, 0}, {2, 0}, {2, 1}, {3, 0}, {3, 1}, {3, 2}}
	build := func(shards int) *Tracer {
		parts := make([]*Tracer, shards)
		for i := range parts {
			parts[i] = NewTracer(3)
		}
		for i, k := range keys {
			class := "dns:ldns-timeout"
			if i%2 == 1 {
				class = "http:503"
			}
			// Shard by major key, mimicking client-sharded runs.
			parts[int(k[0])%shards].Add(exemplar(class, k[0], k[1]))
		}
		merged := NewTracer(3)
		for _, p := range parts {
			if err := merged.Merge(p); err != nil {
				t.Fatal(err)
			}
		}
		return merged
	}
	render := func(tr *Tracer) string {
		var buf bytes.Buffer
		if err := tr.WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	serial := render(build(1))
	if two := render(build(2)); two != serial {
		t.Errorf("2-shard merge differs from serial:\n%s\nvs\n%s", two, serial)
	}
	if four := render(build(4)); four != serial {
		t.Errorf("4-shard merge differs from serial")
	}
}

func TestTracerMergeCapMismatch(t *testing.T) {
	a, b := NewTracer(2), NewTracer(3)
	if err := a.Merge(b); err == nil {
		t.Fatal("merge with mismatched K succeeded")
	}
	if err := a.Merge(nil); err != nil {
		t.Fatalf("merge with nil source: %v", err)
	}
}

func TestWriteChromeTraceValidJSON(t *testing.T) {
	tr := NewTracer(2)
	ex := exemplar("http:404", 3, 7)
	ex.Spans = append(ex.Spans, TraceSpan{
		Name: "dns", Depth: 1, Start: 3e9, Dur: 52e6,
		Outcome: "ok", Detail: "blame=none",
	})
	tr.Add(ex)
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   int64             `json:"ts"`
			Dur  int64             `json:"dur"`
			Pid  int               `json:"pid"`
			Tid  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	// process_name + thread_name metadata, then two X events.
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("got %d events, want 4", len(doc.TraceEvents))
	}
	if doc.TraceEvents[0].Ph != "M" || doc.TraceEvents[0].Args["name"] != "http:404" {
		t.Errorf("first event is not the process_name metadata: %+v", doc.TraceEvents[0])
	}
	if ev := doc.TraceEvents[3]; ev.Ph != "X" || ev.Name != "dns" || ev.Ts != 3e6 || ev.Dur != 52e3 {
		t.Errorf("dns span event wrong: %+v", ev)
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d, want 1", tr.Len())
	}
}
