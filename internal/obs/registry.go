// Package obs is the run-wide observability layer: a zero-dependency
// metrics registry (atomic counters, gauges, and fixed-bucket
// histograms), lightweight phase/span timers, a periodic progress
// reporter, and two exposition formats (a Prometheus-style text dump
// and a JSON snapshot).
//
// Metrics come in two classes, kept separate in every exposition:
//
//   - deterministic metrics count work the pipeline performed — numbers
//     that depend only on the seed and the flags, never on the wall
//     clock or the shard count interleaving (transactions evaluated,
//     failures, episodes scanned, records ingested);
//   - wall-clock metrics measure elapsed real time and derived rates
//     (span durations, gzip time, throughput), which vary run to run.
//
// The registry mirrors how core.Analysis shards: per-shard Registry
// instances can be folded together with Merge, which sums every metric
// and is therefore independent of merge order. The common single-process
// pattern is simpler still — one shared Registry whose atomic metrics
// are updated from any goroutine, with hot loops keeping plain local
// counters and folding them in once at shard completion (the pattern
// internal/measure uses so its per-transaction path stays
// allocation-free).
//
// All instrumentation is stdout-silent: the registry writes only where
// it is told to (a file, an HTTP response, a caller-supplied stderr
// writer), so golden-stdout tests hold with metrics enabled.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry holds named metrics. The zero value is not usable; create
// with NewRegistry. All methods are safe for concurrent use, and every
// getter is nil-receiver-safe (a nil *Registry hands out nil metrics
// whose update methods no-op), so instrumented code needs no "is
// observability on?" branches.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter is a monotonically increasing integer metric. The nil
// counter (handed out by a nil Registry) accepts updates and reads as
// zero.
type Counter struct {
	v    atomic.Int64
	wall bool
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric that can move both ways. The nil gauge
// accepts updates and reads as zero.
type Gauge struct {
	v    atomicFloat
	wall bool
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds v to the gauge.
func (g *Gauge) Add(v float64) {
	if g != nil {
		g.v.Add(v)
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets. A histogram with
// upper bounds [b0, b1, ..., bn-1] has n+1 buckets: observation v lands
// in the first bucket whose bound satisfies v <= bound, or in the
// implicit +Inf overflow bucket. The nil histogram accepts observations
// and snapshots empty.
type Histogram struct {
	bounds []float64 // sorted ascending upper bounds
	counts []atomic.Int64
	sum    atomicFloat
	count  atomic.Int64
	wall   bool
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v; the overflow bucket is
	// len(bounds).
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// AddCounts folds pre-aggregated observations into the histogram:
// counts[i] observations landing in bucket i (len(bounds)+1 entries,
// the last being the +Inf overflow bucket) whose values total sum.
// Shard-local bucket arrays folded in once at shard completion are the
// no-atomics-per-event pattern internal/measure uses for its
// per-failure-class latency histograms. Nil-safe; panics on a bucket
// count mismatch.
func (h *Histogram) AddCounts(counts []int64, sum float64) {
	if h == nil {
		return
	}
	if len(counts) != len(h.counts) {
		panic(fmt.Sprintf("obs: AddCounts with %d buckets into histogram with %d", len(counts), len(h.counts)))
	}
	var total int64
	for i, n := range counts {
		if n != 0 {
			h.counts[i].Add(n)
			total += n
		}
	}
	if total == 0 {
		return
	}
	h.sum.Add(sum)
	h.count.Add(total)
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Counter returns the deterministic counter with the given name,
// creating it on first use. Names may carry a Prometheus-style label
// suffix, e.g. `records_total{pass="grids"}`.
func (r *Registry) Counter(name string) *Counter { return r.counter(name, false) }

// WallCounter returns the wall-clock counter with the given name.
func (r *Registry) WallCounter(name string) *Counter { return r.counter(name, true) }

// Gauge returns the deterministic gauge with the given name.
func (r *Registry) Gauge(name string) *Gauge { return r.gauge(name, false) }

// WallGauge returns the wall-clock gauge with the given name.
func (r *Registry) WallGauge(name string) *Gauge { return r.gauge(name, true) }

// Histogram returns the deterministic histogram with the given name and
// bucket upper bounds (strictly ascending; the +Inf overflow bucket is
// implicit). Re-registering a name with different bounds panics.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	return r.histogram(name, bounds, false)
}

// WallHistogram returns the wall-clock histogram with the given name
// and bounds.
func (r *Registry) WallHistogram(name string, bounds []float64) *Histogram {
	return r.histogram(name, bounds, true)
}

func (r *Registry) counter(name string, wall bool) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		if c.wall != wall {
			panic(fmt.Sprintf("obs: counter %q re-registered with a different class", name))
		}
		return c
	}
	r.checkFree(name, "counter")
	c := &Counter{wall: wall}
	r.counters[name] = c
	return c
}

func (r *Registry) gauge(name string, wall bool) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		if g.wall != wall {
			panic(fmt.Sprintf("obs: gauge %q re-registered with a different class", name))
		}
		return g
	}
	r.checkFree(name, "gauge")
	g := &Gauge{wall: wall}
	r.gauges[name] = g
	return g
}

func (r *Registry) histogram(name string, bounds []float64, wall bool) *Histogram {
	if r == nil {
		return nil
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not strictly ascending", name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		if h.wall != wall || !equalBounds(h.bounds, bounds) {
			panic(fmt.Sprintf("obs: histogram %q re-registered with different class or bounds", name))
		}
		return h
	}
	r.checkFree(name, "histogram")
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
		wall:   wall,
	}
	r.hists[name] = h
	return h
}

// checkFree panics if name is already registered as another metric
// kind. Callers hold r.mu.
func (r *Registry) checkFree(name, kind string) {
	if _, ok := r.counters[name]; ok && kind != "counter" {
		panic(fmt.Sprintf("obs: %s %q already registered as a counter", kind, name))
	}
	if _, ok := r.gauges[name]; ok && kind != "gauge" {
		panic(fmt.Sprintf("obs: %s %q already registered as a gauge", kind, name))
	}
	if _, ok := r.hists[name]; ok && kind != "histogram" {
		panic(fmt.Sprintf("obs: %s %q already registered as a histogram", kind, name))
	}
}

func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Merge folds every metric of src into r: counters, gauges, and
// histograms all sum (gauges included, so per-shard residency gauges
// aggregate naturally). Summation commutes, so merging shard registries
// in any order yields the same result — the registry counterpart of
// core.Analysis.Merge. Merge validates every metric before applying
// anything: a kind, class, or bucket-bounds mismatch returns an error
// and leaves r untouched.
func (r *Registry) Merge(src *Registry) error {
	if src == nil {
		return nil
	}
	if r == nil {
		return fmt.Errorf("obs: merge into nil registry")
	}
	if r == src {
		return fmt.Errorf("obs: merge registry with itself")
	}
	snap := src.Snapshot()

	r.mu.Lock()
	defer r.mu.Unlock()
	// Phase 1: validate against r's existing registrations.
	for _, sec := range []Section{snap.Deterministic, snap.Wall} {
		for name := range sec.Counters {
			if err := r.mergeCheck(name, "counter"); err != nil {
				return err
			}
		}
		for name := range sec.Gauges {
			if err := r.mergeCheck(name, "gauge"); err != nil {
				return err
			}
		}
		for name, hs := range sec.Histograms {
			if err := r.mergeCheck(name, "histogram"); err != nil {
				return err
			}
			if h, ok := r.hists[name]; ok && !equalBounds(h.bounds, hs.Bounds) {
				return fmt.Errorf("obs: merge: histogram %q bucket bounds differ", name)
			}
		}
	}
	// Phase 2: apply. The maps are touched directly (r.mu is held) via
	// the same get-or-create paths, minus locking.
	apply := func(sec Section, wall bool) {
		for name, v := range sec.Counters {
			c, ok := r.counters[name]
			if !ok {
				c = &Counter{wall: wall}
				r.counters[name] = c
			}
			c.v.Add(v)
		}
		for name, v := range sec.Gauges {
			g, ok := r.gauges[name]
			if !ok {
				g = &Gauge{wall: wall}
				r.gauges[name] = g
			}
			g.v.Add(v)
		}
		for name, hs := range sec.Histograms {
			h, ok := r.hists[name]
			if !ok {
				h = &Histogram{
					bounds: append([]float64(nil), hs.Bounds...),
					counts: make([]atomic.Int64, len(hs.Bounds)+1),
					wall:   wall,
				}
				r.hists[name] = h
			}
			for i, n := range hs.Counts {
				h.counts[i].Add(n)
			}
			h.sum.Add(hs.Sum)
			h.count.Add(hs.Count)
		}
	}
	apply(snap.Deterministic, false)
	apply(snap.Wall, true)
	return nil
}

// mergeCheck reports whether name is registered in r as a different
// metric kind. Callers hold r.mu.
func (r *Registry) mergeCheck(name, kind string) error {
	if _, ok := r.counters[name]; ok && kind != "counter" {
		return fmt.Errorf("obs: merge: %q is a counter in the receiver, a %s in the source", name, kind)
	}
	if _, ok := r.gauges[name]; ok && kind != "gauge" {
		return fmt.Errorf("obs: merge: %q is a gauge in the receiver, a %s in the source", name, kind)
	}
	if _, ok := r.hists[name]; ok && kind != "histogram" {
		return fmt.Errorf("obs: merge: %q is a histogram in the receiver, a %s in the source", name, kind)
	}
	return nil
}

// atomicFloat is a float64 with atomic Store/Load/Add.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Store(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) Load() float64   { return math.Float64frombits(f.bits.Load()) }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}
