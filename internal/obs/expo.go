package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Snapshot is a point-in-time copy of a registry, split into the
// deterministic (seed-stable) and wall-clock metric classes. It is the
// JSON exposition schema and the programmatic read API; Snapshot values
// round-trip through encoding/json unchanged.
type Snapshot struct {
	Deterministic Section `json:"deterministic"`
	Wall          Section `json:"wall"`
}

// Section holds one metric class of a Snapshot.
type Section struct {
	Counters   map[string]int64            `json:"counters,omitempty"`
	Gauges     map[string]float64          `json:"gauges,omitempty"`
	Histograms map[string]HistogramSummary `json:"histograms,omitempty"`
}

// HistogramSummary is the snapshot form of a Histogram. Counts is
// per-bucket (not cumulative); its last element is the +Inf overflow
// bucket, so len(Counts) == len(Bounds)+1.
type HistogramSummary struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  int64     `json:"count"`
}

// Snapshot copies the registry's current values. A nil registry
// snapshots empty sections.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Deterministic: Section{Counters: map[string]int64{}, Gauges: map[string]float64{}, Histograms: map[string]HistogramSummary{}},
		Wall:          Section{Counters: map[string]int64{}, Gauges: map[string]float64{}, Histograms: map[string]HistogramSummary{}},
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		sec := &snap.Deterministic
		if c.wall {
			sec = &snap.Wall
		}
		sec.Counters[name] = c.v.Load()
	}
	for name, g := range r.gauges {
		sec := &snap.Deterministic
		if g.wall {
			sec = &snap.Wall
		}
		sec.Gauges[name] = g.v.Load()
	}
	for name, h := range r.hists {
		sec := &snap.Deterministic
		if h.wall {
			sec = &snap.Wall
		}
		hs := HistogramSummary{
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]int64, len(h.counts)),
			Sum:    h.sum.Load(),
			Count:  h.count.Load(),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		sec.Histograms[name] = hs
	}
	return snap
}

// WriteJSON writes an indented JSON snapshot of the registry. Map keys
// are emitted sorted, so the output is byte-stable for a given state.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WriteProm writes a Prometheus-style text dump: the deterministic
// section first, then the wall-clock section, each under a marker
// comment, with metrics sorted by name. Histograms expose cumulative
// le-labeled buckets plus _sum and _count series.
func (r *Registry) WriteProm(w io.Writer) error {
	snap := r.Snapshot()
	if err := writePromSection(w, "deterministic metrics (stable for a given seed and flags)", snap.Deterministic); err != nil {
		return err
	}
	return writePromSection(w, "wall-clock metrics (vary run to run)", snap.Wall)
}

func writePromSection(w io.Writer, header string, sec Section) error {
	if _, err := fmt.Fprintf(w, "# %s\n", header); err != nil {
		return err
	}
	type line struct {
		name, typ, body string
	}
	var lines []line
	for name, v := range sec.Counters {
		lines = append(lines, line{name, "counter", fmt.Sprintf("%s %d\n", name, v)})
	}
	for name, v := range sec.Gauges {
		lines = append(lines, line{name, "gauge", fmt.Sprintf("%s %s\n", name, formatFloat(v))})
	}
	for name, hs := range sec.Histograms {
		var b strings.Builder
		base, labels := splitName(name)
		cum := int64(0)
		for i, n := range hs.Counts {
			cum += n
			le := "+Inf"
			if i < len(hs.Bounds) {
				le = formatFloat(hs.Bounds[i])
			}
			fmt.Fprintf(&b, "%s_bucket{%sle=%q} %d\n", base, labels, le, cum)
		}
		fmt.Fprintf(&b, "%s_sum%s %s\n", base, wrapLabels(labels), formatFloat(hs.Sum))
		fmt.Fprintf(&b, "%s_count%s %d\n", base, wrapLabels(labels), hs.Count)
		lines = append(lines, line{name, "histogram", b.String()})
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i].name < lines[j].name })
	lastType := ""
	for _, l := range lines {
		base, _ := splitName(l.name)
		if key := base + "/" + l.typ; key != lastType {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, l.typ); err != nil {
				return err
			}
			lastType = key
		}
		if _, err := io.WriteString(w, l.body); err != nil {
			return err
		}
	}
	return nil
}

// splitName separates a metric name from its optional {label="v"}
// suffix, returning the inner label list with a trailing comma when
// present ("" otherwise) so a le label can be appended directly.
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, ""
	}
	inner := name[i+1 : len(name)-1]
	if inner == "" {
		return name[:i], ""
	}
	return name[:i], inner + ","
}

// wrapLabels re-wraps a splitName label list for a series without an
// extra label.
func wrapLabels(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + strings.TrimSuffix(labels, ",") + "}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
