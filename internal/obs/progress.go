package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ShardCounter is one shard's completed-work count, updated by that
// shard's worker and read by the progress reporter. Counters are padded
// so adjacent shards do not false-share a cache line. The nil counter
// (from a nil Progress) accepts updates.
type ShardCounter struct {
	n atomic.Int64
	_ [56]byte
}

// Add records n completed items.
func (c *ShardCounter) Add(n int64) {
	if c != nil {
		c.n.Add(n)
	}
}

// Value returns the shard's current count.
func (c *ShardCounter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// Progress periodically reports pipeline completion to a writer
// (stderr in the CLIs): items done versus expected, throughput, ETA,
// and — with multiple shards — the spread between the most and least
// advanced shard. All output is wall-clock commentary; nothing reaches
// stdout and nothing feeds back into the computation, so enabling
// progress cannot perturb results.
//
// Workers call Shard(i).Add from their own goroutines (hot loops should
// batch adds — internal/measure flushes every few thousand
// transactions); Start launches the reporter, Stop emits a final
// summary line and waits for the reporter to exit. All methods are
// nil-receiver-safe, so "progress off" is simply a nil *Progress.
type Progress struct {
	w         io.Writer
	component string
	unit      string
	expected  int64
	every     time.Duration
	shards    []ShardCounter

	mu      sync.Mutex // serializes report lines
	start   time.Time
	stop    chan struct{}
	done    chan struct{}
	started bool
}

// NewProgress creates a reporter for expected total items (0 = unknown:
// percentage and ETA are omitted) across the given number of shards,
// emitting to w every interval (<= 0 selects 2s).
func NewProgress(w io.Writer, component, unit string, expected int64, shards int, every time.Duration) *Progress {
	if shards < 1 {
		shards = 1
	}
	if every <= 0 {
		every = 2 * time.Second
	}
	return &Progress{
		w:         w,
		component: component,
		unit:      unit,
		expected:  expected,
		every:     every,
		shards:    make([]ShardCounter, shards),
	}
}

// Shard returns shard i's counter, or nil (which still accepts Adds)
// when the reporter was sized with fewer shards.
func (p *Progress) Shard(i int) *ShardCounter {
	if p == nil || i < 0 || i >= len(p.shards) {
		return nil
	}
	return &p.shards[i]
}

// Total returns the summed count across shards.
func (p *Progress) Total() int64 {
	if p == nil {
		return 0
	}
	var t int64
	for i := range p.shards {
		t += p.shards[i].n.Load()
	}
	return t
}

// Start launches the periodic reporter goroutine.
func (p *Progress) Start() {
	if p == nil || p.started {
		return
	}
	p.started = true
	p.start = time.Now()
	p.stop = make(chan struct{})
	p.done = make(chan struct{})
	go func() {
		defer close(p.done)
		t := time.NewTicker(p.every)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				p.report(false)
			case <-p.stop:
				return
			}
		}
	}()
}

// Stop halts the reporter and emits a final summary line. Safe to call
// on a never-started or nil Progress.
func (p *Progress) Stop() {
	if p == nil || !p.started {
		return
	}
	p.started = false
	close(p.stop)
	<-p.done
	p.report(true)
}

// report writes one progress line.
func (p *Progress) report(final bool) {
	total := p.Total()
	elapsed := time.Since(p.start)
	rate := float64(total) / maxSeconds(elapsed)

	var b strings.Builder
	fmt.Fprintf(&b, "%s: progress ", p.component)
	if final {
		// The final flush always carries the totals (and the completion
		// percentage when the expected count is known), even when the
		// run ended between ticks — the last stderr line is the run's
		// one-line summary.
		b.WriteString("done ")
		if p.expected > 0 {
			fmt.Fprintf(&b, "%.1f%% %s/%s", 100*float64(total)/float64(p.expected),
				fmtCount(total), fmtCount(p.expected))
		} else {
			b.WriteString(fmtCount(total))
		}
		fmt.Fprintf(&b, " %s in %v (%s/s)", p.unit,
			elapsed.Round(10*time.Millisecond), fmtCount(int64(rate)))
	} else {
		if p.expected > 0 {
			fmt.Fprintf(&b, "%.1f%% %s/%s %s", 100*float64(total)/float64(p.expected),
				fmtCount(total), fmtCount(p.expected), p.unit)
		} else {
			fmt.Fprintf(&b, "%s %s", fmtCount(total), p.unit)
		}
		fmt.Fprintf(&b, " %s/s", fmtCount(int64(rate)))
		if p.expected > total && rate > 0 {
			eta := time.Duration(float64(p.expected-total) / rate * float64(time.Second))
			fmt.Fprintf(&b, " eta %v", eta.Round(time.Second))
		}
		if len(p.shards) > 1 {
			lo, hi := p.shards[0].n.Load(), p.shards[0].n.Load()
			for i := 1; i < len(p.shards); i++ {
				n := p.shards[i].n.Load()
				if n < lo {
					lo = n
				}
				if n > hi {
					hi = n
				}
			}
			fmt.Fprintf(&b, " shard-spread %s", fmtCount(hi-lo))
		}
	}
	b.WriteByte('\n')
	p.mu.Lock()
	io.WriteString(p.w, b.String())
	p.mu.Unlock()
}

func maxSeconds(d time.Duration) float64 {
	s := d.Seconds()
	if s < 1e-9 {
		return 1e-9
	}
	return s
}

// fmtCount renders a count compactly: 987, 23.4k, 1.35M, 2.10G.
func fmtCount(n int64) string {
	switch {
	case n < 0:
		return "-" + fmtCount(-n)
	case n < 1000:
		return fmt.Sprintf("%d", n)
	case n < 1_000_000:
		return fmt.Sprintf("%.1fk", float64(n)/1e3)
	case n < 1_000_000_000:
		return fmt.Sprintf("%.2fM", float64(n)/1e6)
	default:
		return fmt.Sprintf("%.2fG", float64(n)/1e9)
	}
}
