package obs

import (
	"strings"
	"testing"
)

func buildExpoRegistry() *Registry {
	r := NewRegistry()
	r.Counter("txns_total").Add(100)
	r.Counter(`records_total{pass="grids"}`).Add(7)
	r.WallGauge("rate").Set(1.5)
	h := r.Histogram("chunk_records", []float64{2, 8})
	h.Observe(1)
	h.Observe(2)
	h.Observe(100)
	r.WallHistogram(`gzip_seconds{stream="a"}`, []float64{0.5}).Observe(0.25)
	return r
}

func TestWritePromFormat(t *testing.T) {
	var b strings.Builder
	if err := buildExpoRegistry().WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	detHdr := strings.Index(out, "# deterministic metrics")
	wallHdr := strings.Index(out, "# wall-clock metrics")
	if detHdr < 0 || wallHdr < 0 || detHdr > wallHdr {
		t.Fatalf("section headers missing or out of order:\n%s", out)
	}
	det, wall := out[:wallHdr], out[wallHdr:]

	for _, want := range []string{
		"# TYPE txns_total counter\n",
		"txns_total 100\n",
		`records_total{pass="grids"} 7` + "\n",
		"# TYPE chunk_records histogram\n",
		`chunk_records_bucket{le="2"} 2` + "\n", // cumulative: 1 + 1
		`chunk_records_bucket{le="8"} 2` + "\n",
		`chunk_records_bucket{le="+Inf"} 3` + "\n",
		"chunk_records_sum 103\n",
		"chunk_records_count 3\n",
	} {
		if !strings.Contains(det, want) {
			t.Errorf("deterministic section missing %q:\n%s", want, det)
		}
	}
	for _, want := range []string{
		"rate 1.5\n",
		// The le label composes after the metric's own labels; _sum and
		// _count keep the original label set.
		`gzip_seconds_bucket{stream="a",le="0.5"} 1` + "\n",
		`gzip_seconds_bucket{stream="a",le="+Inf"} 1` + "\n",
		`gzip_seconds_sum{stream="a"} 0.25` + "\n",
		`gzip_seconds_count{stream="a"} 1` + "\n",
	} {
		if !strings.Contains(wall, want) {
			t.Errorf("wall section missing %q:\n%s", want, wall)
		}
	}
	if strings.Contains(wall, "txns_total") || strings.Contains(det, "gzip_seconds") {
		t.Fatalf("metric leaked into the wrong section:\n%s", out)
	}
}

// TestWritePromByteStable: repeated dumps of the same state are
// byte-identical (map iteration order must not leak into the output).
func TestWritePromByteStable(t *testing.T) {
	r := buildExpoRegistry()
	var first string
	for i := 0; i < 10; i++ {
		var b strings.Builder
		if err := r.WriteProm(&b); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = b.String()
		} else if b.String() != first {
			t.Fatalf("dump %d differs from first:\n%s\nvs\n%s", i, b.String(), first)
		}
	}
}

func TestWriteJSONByteStable(t *testing.T) {
	r := buildExpoRegistry()
	var a, b strings.Builder
	if err := r.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("JSON dumps of identical state differ")
	}
	for _, want := range []string{`"deterministic"`, `"wall"`, `"txns_total": 100`} {
		if !strings.Contains(a.String(), want) {
			t.Errorf("JSON dump missing %q:\n%s", want, a.String())
		}
	}
}

func TestSplitName(t *testing.T) {
	cases := []struct {
		in, base, labels string
	}{
		{"plain", "plain", ""},
		{`m{a="1"}`, "m", `a="1",`},
		{`m{a="1",b="2"}`, "m", `a="1",b="2",`},
		{"m{}", "m", ""},
		{"odd{unclosed", "odd{unclosed", ""},
	}
	for _, tc := range cases {
		base, labels := splitName(tc.in)
		if base != tc.base || labels != tc.labels {
			t.Errorf("splitName(%q) = (%q, %q), want (%q, %q)", tc.in, base, labels, tc.base, tc.labels)
		}
	}
	if got := wrapLabels(`a="1",`); got != `{a="1"}` {
		t.Errorf("wrapLabels = %q", got)
	}
	if got := wrapLabels(""); got != "" {
		t.Errorf("wrapLabels(empty) = %q", got)
	}
}
