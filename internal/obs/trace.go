package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// TraceSpan is one node of a transaction's causal span tree, flattened
// in pre-order with Depth giving the nesting level (the root span has
// Depth 0). Start and Dur are virtual-clock nanoseconds, so a span tree
// is byte-for-byte reproducible from the seed alone.
type TraceSpan struct {
	Name    string // "txn", "dns", "tcp 10.0.3.7", "http", ...
	Depth   int    // nesting level under the root span
	Start   int64  // virtual ns since the experiment epoch
	Dur     int64  // virtual ns
	Outcome string // stage-specific outcome ("ok", "no-connection", "503", ...)
	Detail  string // blame / cross-link annotations; may be empty
}

// TraceExemplar is one sampled transaction: its failure class, a human
// label ("pl-003 x www.example.com"), its span tree, and the canonical
// sort key (Major, Minor) — for the simulator, (client index, per-client
// transaction ordinal) — that makes sampling shard-invariant.
type TraceExemplar struct {
	Class        string
	Label        string
	Major, Minor int64
	Spans        []TraceSpan
}

// Tracer collects the first K exemplars per failure class in canonical
// (Major, Minor) order. "First" is defined by the key, not by arrival
// order: Add keeps a class's K smallest keys seen so far, so shards that
// complete transactions out of canonical order (packet mode's event
// loop) still converge on the same exemplar set. Per-shard Tracers are
// combined with Merge, which is an ordered merge and therefore
// independent of shard count — the same contract Registry.Merge and
// core.Analysis.Merge follow.
//
// A Tracer is not safe for concurrent use; use one per shard and merge.
type Tracer struct {
	k       int
	classes map[string][]*TraceExemplar // each slice sorted by key, len <= k
}

// NewTracer returns a Tracer keeping up to k exemplars per class.
func NewTracer(k int) *Tracer {
	if k < 1 {
		k = 1
	}
	return &Tracer{k: k, classes: make(map[string][]*TraceExemplar)}
}

// K reports the per-class exemplar cap.
func (t *Tracer) K() int { return t.k }

// keyLess orders exemplars by (Major, Minor).
func keyLess(aMaj, aMin, bMaj, bMin int64) bool {
	if aMaj != bMaj {
		return aMaj < bMaj
	}
	return aMin < bMin
}

// Admit reports whether an exemplar with the given class and key would
// currently be kept by Add. Callers use it to skip building span trees
// (and their string materialisation) for transactions that cannot make
// the sample.
func (t *Tracer) Admit(class string, major, minor int64) bool {
	list := t.classes[class]
	if len(list) < t.k {
		return true
	}
	last := list[len(list)-1]
	return keyLess(major, minor, last.Major, last.Minor)
}

// Add inserts ex into its class's sample, keeping the K smallest keys.
// It reports whether the exemplar was kept. The exemplar is stored by
// pointer; callers must not reuse its Spans backing array afterwards.
func (t *Tracer) Add(ex TraceExemplar) bool {
	list := t.classes[ex.Class]
	i := sort.Search(len(list), func(i int) bool {
		return !keyLess(list[i].Major, list[i].Minor, ex.Major, ex.Minor)
	})
	if i >= t.k {
		return false
	}
	e := ex
	if len(list) < t.k {
		list = append(list, nil)
	}
	copy(list[i+1:], list[i:])
	list[i] = &e
	t.classes[ex.Class] = list
	return true
}

// Merge folds src's exemplars into t, preserving canonical order and
// the per-class cap. Both tracers must have the same K. src is left
// unchanged. Merging per-shard tracers in any order yields the same
// result as a single serial run, because the kept set is defined by the
// K smallest canonical keys per class.
func (t *Tracer) Merge(src *Tracer) error {
	if src == nil {
		return nil
	}
	if src.k != t.k {
		return fmt.Errorf("obs: tracer merge: exemplar cap mismatch (%d vs %d)", t.k, src.k)
	}
	for _, list := range src.classes {
		for _, ex := range list {
			t.Add(*ex)
		}
	}
	return nil
}

// Classes returns the sampled failure classes in sorted order.
func (t *Tracer) Classes() []string {
	out := make([]string, 0, len(t.classes))
	for c := range t.classes {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Exemplars returns the kept exemplars for class in canonical order.
// The returned slice aliases the tracer's storage: span Detail fields
// may be annotated in place (packet mode's flow-stats cross-link).
func (t *Tracer) Exemplars(class string) []*TraceExemplar {
	return t.classes[class]
}

// Len reports the total number of kept exemplars across all classes.
func (t *Tracer) Len() int {
	n := 0
	for _, list := range t.classes {
		n += len(list)
	}
	return n
}

// chromeEvent is one entry of the Chrome trace-event format's
// traceEvents array (ph "X" = complete event, ph "M" = metadata).
// Timestamps and durations are microseconds.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   int64             `json:"ts"`
	Dur  *int64            `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace writes the kept exemplars as Chrome trace-event JSON
// (the chrome://tracing / Perfetto "JSON Object Format"). Each failure
// class becomes a process (pid), each exemplar a thread (tid) named
// after its label, and each span a complete ("X") event; nesting is
// conveyed by timestamp containment, which the viewers render as flame
// stacks. Output is deterministic: classes sort alphabetically,
// exemplars by canonical key, and all numbers are integral.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(ev chromeEvent) error {
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		_, err = bw.Write(b)
		return err
	}
	for pid, class := range t.Classes() {
		if err := emit(chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]string{"name": class},
		}); err != nil {
			return err
		}
		for tid, ex := range t.Exemplars(class) {
			if err := emit(chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
				Args: map[string]string{"name": ex.Label},
			}); err != nil {
				return err
			}
			for _, sp := range ex.Spans {
				dur := sp.Dur / 1000
				args := map[string]string{"outcome": sp.Outcome}
				if sp.Detail != "" {
					args["detail"] = sp.Detail
				}
				if err := emit(chromeEvent{
					Name: sp.Name, Cat: class, Ph: "X",
					Ts: sp.Start / 1000, Dur: &dur,
					Pid: pid, Tid: tid, Args: args,
				}); err != nil {
					return err
				}
			}
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
