package obs

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSpanRecordsIntoWallSection(t *testing.T) {
	r := NewRegistry()
	sp := r.Span("phase/a")
	time.Sleep(2 * time.Millisecond)
	d := sp.End()
	if d < 2*time.Millisecond {
		t.Fatalf("span duration %v implausibly short", d)
	}
	r.Span("phase/a").End()
	snap := r.Snapshot().Wall
	if got := snap.Counters[`span_count{span="phase/a"}`]; got != 2 {
		t.Fatalf("span_count = %d, want 2", got)
	}
	if secs := snap.Gauges[`span_seconds{span="phase/a"}`]; secs < d.Seconds() {
		t.Fatalf("span_seconds = %v, want >= %v (durations accumulate)", secs, d.Seconds())
	}
	if len(r.Snapshot().Deterministic.Counters) != 0 {
		t.Fatal("span leaked into the deterministic section")
	}
}

func TestProgressReporting(t *testing.T) {
	var mu sync.Mutex
	var b strings.Builder
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return b.Write(p)
	})
	p := NewProgress(w, "testcmd", "txns", 1000, 4, 5*time.Millisecond)
	if p.Shard(4) != nil || p.Shard(-1) != nil {
		t.Fatal("out-of-range Shard did not return nil")
	}
	p.Shard(4).Add(1) // nil shard counter must accept updates
	p.Start()
	for s := 0; s < 4; s++ {
		p.Shard(s).Add(int64(100 + 10*s))
	}
	time.Sleep(15 * time.Millisecond)
	p.Stop()

	if got := p.Total(); got != 460 {
		t.Fatalf("Total = %d, want 460", got)
	}
	mu.Lock()
	out := b.String()
	mu.Unlock()
	if !strings.Contains(out, "testcmd: progress") {
		t.Fatalf("no progress lines:\n%s", out)
	}
	if !strings.Contains(out, "46.0% 460/1.0k txns") {
		t.Fatalf("missing percentage report:\n%s", out)
	}
	if !strings.Contains(out, "shard-spread 30") {
		t.Fatalf("missing shard-spread (130-100):\n%s", out)
	}
	if !strings.Contains(out, "done 46.0% 460/1.0k txns in") {
		t.Fatalf("missing final summary:\n%s", out)
	}

	// Nil and never-started reporters are inert.
	var np *Progress
	np.Start()
	np.Shard(0).Add(1)
	np.Stop()
	NewProgress(io.Discard, "x", "y", 0, 1, 0).Stop()
}

// TestProgressFinalFlush pins the final-flush guarantee: a run that
// ends between ticks (the interval here never fires) still emits a
// summary, and its last stderr line carries the 100% completion with
// totals.
func TestProgressFinalFlush(t *testing.T) {
	var mu sync.Mutex
	var b strings.Builder
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return b.Write(p)
	})
	p := NewProgress(w, "testcmd", "txns", 500, 2, time.Hour)
	p.Start()
	p.Shard(0).Add(260)
	p.Shard(1).Add(240)
	p.Stop()

	mu.Lock()
	out := strings.TrimRight(b.String(), "\n")
	mu.Unlock()
	lines := strings.Split(out, "\n")
	last := lines[len(lines)-1]
	const wantPrefix = "testcmd: progress done 100.0% 500/500 txns in "
	if !strings.HasPrefix(last, wantPrefix) {
		t.Fatalf("last progress line = %q, want prefix %q", last, wantPrefix)
	}
	// Unknown expected totals omit the percentage but keep the count.
	b.Reset()
	q := NewProgress(w, "testcmd", "recs", 0, 1, time.Hour)
	q.Start()
	q.Shard(0).Add(42)
	q.Stop()
	mu.Lock()
	out = strings.TrimRight(b.String(), "\n")
	mu.Unlock()
	if !strings.HasPrefix(out, "testcmd: progress done 42 recs in ") {
		t.Fatalf("final line without expected total = %q", out)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestFmtCount(t *testing.T) {
	cases := []struct {
		n    int64
		want string
	}{
		{0, "0"}, {987, "987"}, {23_400, "23.4k"}, {1_350_000, "1.35M"},
		{2_100_000_000, "2.10G"}, {-1500, "-1.5k"},
	}
	for _, tc := range cases {
		if got := fmtCount(tc.n); got != tc.want {
			t.Errorf("fmtCount(%d) = %q, want %q", tc.n, got, tc.want)
		}
	}
}

func TestLogfAndFatalf(t *testing.T) {
	var b strings.Builder
	restore := SetLogOutput(&b)
	defer restore()
	Logf("mycmd", "bad thing %d", 7)
	if got := b.String(); got != "mycmd: bad thing 7\n" {
		t.Fatalf("Logf output = %q", got)
	}

	b.Reset()
	exited := -1
	prevExit := osExit
	osExit = func(code int) { exited = code }
	defer func() { osExit = prevExit }()
	Fatalf("mycmd", "fatal %s", "err")
	if exited != 1 {
		t.Fatalf("Fatalf exit code = %d, want 1", exited)
	}
	if got := b.String(); got != "mycmd: fatal err\n" {
		t.Fatalf("Fatalf output = %q", got)
	}
}

func TestCLIFlagsSession(t *testing.T) {
	dir := t.TempDir()
	f := CLIFlags{
		MemProfile:    filepath.Join(dir, "heap.prof"),
		MetricsOut:    filepath.Join(dir, "metrics.txt"),
		MetricsListen: "127.0.0.1:0",
	}
	reg := NewRegistry()
	reg.Counter("smoke_total").Add(3)
	sess, err := f.Start("testcmd", reg)
	if err != nil {
		t.Fatal(err)
	}
	addr := sess.ListenAddr()
	if addr == "" {
		t.Fatal("no listener address for :0 listen")
	}
	for path, want := range map[string]string{
		"/metrics":      "smoke_total 3",
		"/metrics.json": `"smoke_total": 3`,
	} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(body), want) {
			t.Fatalf("GET %s: missing %q:\n%s", path, want, body)
		}
	}
	if err := sess.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := sess.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	dump, err := os.ReadFile(f.MetricsOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(dump), "smoke_total 3") {
		t.Fatalf("metrics dump missing counter:\n%s", dump)
	}
	if st, err := os.Stat(f.MemProfile); err != nil || st.Size() == 0 {
		t.Fatalf("heap profile missing or empty: %v", err)
	}
	if _, err := http.Get(fmt.Sprintf("http://%s/metrics", addr)); err == nil {
		t.Fatal("listener still serving after Close")
	}
}

// TestMetricsListenerConcurrentScrape covers the live /metrics
// listener the way a monitored run exercises it: writer goroutines
// update counters and histograms while scrapers hit /metrics and
// /metrics.json concurrently, and the session closes while the
// scrapers are still looping — the "run finished before the scraper"
// shutdown must be graceful: completed scrapes return full bodies,
// post-close scrapes fail with a connection error, nothing panics.
// Run under -race, this also gates snapshot-vs-update safety.
func TestMetricsListenerConcurrentScrape(t *testing.T) {
	f := CLIFlags{MetricsListen: "127.0.0.1:0"}
	reg := NewRegistry()
	sess, err := f.Start("testcmd", reg)
	if err != nil {
		t.Fatal(err)
	}
	addr := sess.ListenAddr()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		h := reg.Histogram("scrape_lat_ms", []float64{1, 10, 100})
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			reg.Counter("txns_total").Add(1)
			h.Observe(float64(i % 120))
		}
	}()

	var scraped atomic.Int64
	for _, path := range []string{"/metrics", "/metrics.json"} {
		path := path
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get("http://" + addr + path)
				if err != nil {
					return // listener closed under us: the graceful end
				}
				body, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				if rerr != nil {
					return // close raced the body read; also graceful
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("GET %s: status %d", path, resp.StatusCode)
					return
				}
				if len(body) == 0 {
					t.Errorf("GET %s: empty body", path)
					return
				}
				scraped.Add(1)
			}
		}()
	}

	// Let scrapes overlap updates, then end the "run" while scrapers
	// are still going.
	deadline := time.Now().Add(time.Second)
	for scraped.Load() < 4 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := sess.Close(); err != nil {
		t.Errorf("Close during live scrapes: %v", err)
	}
	close(stop)
	wg.Wait()
	if scraped.Load() == 0 {
		t.Error("no scrape completed while the run was live")
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("listener still serving after Close")
	}
}

func TestCLIFlagsRegisterDefaults(t *testing.T) {
	var f CLIFlags
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f.Register(fs)
	if err := fs.Parse([]string{"-progress", "-metrics-out", "m.txt"}); err != nil {
		t.Fatal(err)
	}
	if !f.Progress || f.MetricsOut != "m.txt" || f.CPUProfile != "" {
		t.Fatalf("parsed flags = %+v", f)
	}
	// No flags set: Start is a cheap no-op session.
	var off CLIFlags
	sess, err := off.Start("x", nil)
	if err != nil {
		t.Fatal(err)
	}
	if sess.ListenAddr() != "" {
		t.Fatal("idle session claims a listener")
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
}
