package obs

import (
	"fmt"
	"io"
	"os"
	"sync"
)

// The shared CLI stderr logger: every command logs through Logf with a
// component= prefix ("webfail", "webfail-analyze", "webfail-bgp"), so
// diagnostics are uniformly attributable and never touch stdout.
var (
	logMu sync.Mutex
	logW  io.Writer = os.Stderr

	// osExit is swappable so Fatalf is testable.
	osExit = os.Exit
)

// SetLogOutput redirects Logf (default os.Stderr) and returns a
// function restoring the previous writer. Intended for tests.
func SetLogOutput(w io.Writer) (restore func()) {
	logMu.Lock()
	defer logMu.Unlock()
	prev := logW
	logW = w
	return func() {
		logMu.Lock()
		defer logMu.Unlock()
		logW = prev
	}
}

// Logf writes one "component: message" line to the log writer.
func Logf(component, format string, args ...any) {
	logMu.Lock()
	defer logMu.Unlock()
	fmt.Fprintf(logW, component+": "+format+"\n", args...)
}

// Fatalf logs like Logf and exits with status 1.
func Fatalf(component, format string, args ...any) {
	Logf(component, format, args...)
	osExit(1)
}
