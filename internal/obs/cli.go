package obs

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
)

// CLIFlags is the shared observability flag set of the webfail
// commands: the PR 4 profiling flags plus the metrics/progress flags,
// registered identically by all three CLIs so no command carries its
// own copy of the setup.
type CLIFlags struct {
	CPUProfile    string
	MemProfile    string
	MetricsOut    string
	MetricsListen string
	Progress      bool
	// TraceOut / TraceExemplars drive transaction tracing: commands
	// that run transactions sample TraceExemplars exemplars per failure
	// class and export them as Chrome trace-event JSON to TraceOut.
	TraceOut       string
	TraceExemplars int
}

// Register installs the flags on fs (pass flag.CommandLine for the
// global set).
func (f *CLIFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a CPU profile to this path")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a heap profile to this path at exit")
	fs.StringVar(&f.MetricsOut, "metrics-out", "", "write a Prometheus-style metrics dump to this path at exit")
	fs.StringVar(&f.MetricsListen, "metrics-listen", "", "serve live /metrics and /metrics.json snapshots on this address")
	fs.BoolVar(&f.Progress, "progress", false, "report periodic progress to stderr")
	fs.StringVar(&f.TraceOut, "trace-out", "", "write sampled transaction spans as Chrome trace-event JSON to this path")
	fs.IntVar(&f.TraceExemplars, "trace-exemplars", 3, "exemplar transactions kept per failure class for -trace-out")
}

// Tracer returns a fresh exemplar tracer sized by the flags, or nil
// when -trace-out is off — callers pass the result straight to the run
// configuration.
func (f *CLIFlags) Tracer() *Tracer {
	if f.TraceOut == "" {
		return nil
	}
	return NewTracer(f.TraceExemplars)
}

// WriteTrace exports the tracer to the -trace-out path. A nil tracer or
// an unset flag is a no-op.
func (f *CLIFlags) WriteTrace(t *Tracer) error {
	if f.TraceOut == "" || t == nil {
		return nil
	}
	file, err := os.Create(f.TraceOut)
	if err != nil {
		return fmt.Errorf("trace-out: %w", err)
	}
	if err := t.WriteChromeTrace(file); err != nil {
		file.Close()
		return fmt.Errorf("trace-out: %w", err)
	}
	if err := file.Close(); err != nil {
		return fmt.Errorf("trace-out: %w", err)
	}
	return nil
}

// Session is the running state behind a CLIFlags.Start: an in-progress
// CPU profile and/or metrics HTTP listener, finalized by Close.
type Session struct {
	component string
	flags     *CLIFlags
	reg       *Registry
	cpuFile   *os.File
	srv       *http.Server
	addr      string
	closed    bool
}

// Start begins everything the parsed flags ask for: the CPU profile
// and the metrics snapshot listener. The heavier artifacts (heap
// profile, metrics dump file) are written by Close. reg may be nil if
// no metrics flags are in use.
func (f *CLIFlags) Start(component string, reg *Registry) (*Session, error) {
	s := &Session{component: component, flags: f, reg: reg}
	if f.CPUProfile != "" {
		file, err := os.Create(f.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(file); err != nil {
			file.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		s.cpuFile = file
	}
	if f.MetricsListen != "" {
		ln, err := net.Listen("tcp", f.MetricsListen)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("metrics-listen: %w", err)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			reg.WriteProm(w)
		})
		mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			reg.WriteJSON(w)
		})
		s.srv = &http.Server{Handler: mux}
		s.addr = ln.Addr().String()
		go s.srv.Serve(ln)
	}
	return s, nil
}

// ListenAddr returns the bound metrics listener address ("" when
// -metrics-listen is off) — useful with ":0".
func (s *Session) ListenAddr() string { return s.addr }

// Close finalizes the session: stops the CPU profile, writes the heap
// profile and the metrics dump file, and shuts the listener down. Every
// failure is logged through Logf; the first is also returned.
func (s *Session) Close() error {
	if s == nil || s.closed {
		return nil
	}
	s.closed = true
	var first error
	fail := func(err error) {
		Logf(s.component, "%v", err)
		if first == nil {
			first = err
		}
	}
	if s.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := s.cpuFile.Close(); err != nil {
			fail(fmt.Errorf("cpuprofile: %w", err))
		}
	}
	if s.flags.MemProfile != "" {
		if err := writeHeapProfile(s.flags.MemProfile); err != nil {
			fail(fmt.Errorf("memprofile: %w", err))
		}
	}
	if s.flags.MetricsOut != "" {
		if err := writeMetricsFile(s.flags.MetricsOut, s.reg); err != nil {
			fail(fmt.Errorf("metrics-out: %w", err))
		}
	}
	if s.srv != nil {
		if err := s.srv.Close(); err != nil {
			fail(fmt.Errorf("metrics-listen: %w", err))
		}
	}
	return first
}

func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC() // settle allocation statistics before the snapshot
	return pprof.WriteHeapProfile(f)
}

func writeMetricsFile(path string, reg *Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteProm(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
