package textplot

import (
	"strings"
	"testing"
)

func TestCDFPlot(t *testing.T) {
	s := Series{Name: "clients", X: []float64{0, 0.05, 0.1, 0.5, 1}, Y: []float64{0.1, 0.5, 0.9, 0.95, 1}}
	out := CDFPlot("Figure 4", "failure rate", 40, 10, 0, 1, s)
	if !strings.Contains(out, "Figure 4") || !strings.Contains(out, "clients") {
		t.Errorf("missing title/legend:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Error("no data points plotted")
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 12 {
		t.Errorf("too few lines: %d", len(lines))
	}
}

func TestCDFPlotClampsAndMinimums(t *testing.T) {
	s := Series{Name: "x", X: []float64{-5, 99}, Y: []float64{-1, 2}}
	out := CDFPlot("t", "x", 5, 2, 0, 1, s) // forces min sizes
	if out == "" {
		t.Fatal("empty output")
	}
}

func TestStackedBars(t *testing.T) {
	bars := []StackedBar{
		{Label: "PL", Note: "2.98%", Segments: []Segment{
			{Name: "DNS", Value: 0.40, Rune: 'D'},
			{Name: "TCP", Value: 0.59, Rune: 'T'},
			{Name: "HTTP", Value: 0.01, Rune: 'H'},
		}},
		{Label: "BB", Note: "2.01%", Segments: []Segment{
			{Name: "DNS", Value: 0.32, Rune: 'D'},
			{Name: "TCP", Value: 0.66, Rune: 'T'},
			{Name: "HTTP", Value: 0.02, Rune: 'H'},
		}},
	}
	out := StackedBars("Figure 1", 50, bars)
	if !strings.Contains(out, "PL") || !strings.Contains(out, "D=DNS") {
		t.Errorf("bad output:\n%s", out)
	}
	// Bar width respected: each bar line has the | ... | structure.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "PL") {
			inner := line[strings.Index(line, "|")+1 : strings.LastIndex(line, "|")]
			if len(inner) != 50 {
				t.Errorf("bar width = %d, want 50", len(inner))
			}
		}
	}
}

func TestStackedBarsOverflowClamped(t *testing.T) {
	bars := []StackedBar{{Label: "x", Segments: []Segment{
		{Name: "a", Value: 0.7, Rune: 'a'},
		{Name: "b", Value: 0.7, Rune: 'b'}, // sums over 1.0
	}}}
	out := StackedBars("t", 30, bars)
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "x") {
			inner := line[strings.Index(line, "|")+1 : strings.LastIndex(line, "|")]
			if len(inner) != 30 {
				t.Errorf("overflowed bar: %q", inner)
			}
		}
	}
}

func TestTimeSeries(t *testing.T) {
	xs := make([]float64, 100)
	attempts := make([]float64, 100)
	fails := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(1105000000 + i*3600)
		attempts[i] = 800
		if i == 50 {
			fails[i] = 400
		}
	}
	out := TimeSeries("Figure 5", 60, xs, []TimePanel{
		{Label: "TCP attempts", Y: attempts},
		{Label: "TCP failures", Y: fails},
	})
	if !strings.Contains(out, "TCP attempts") || !strings.Contains(out, "max=800") {
		t.Errorf("bad output:\n%s", out)
	}
	if !strings.Contains(out, "max=400") {
		t.Errorf("failure panel missing max:\n%s", out)
	}
	// The failure spike appears mid-panel.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "TCP failures") {
			inner := line[strings.Index(line, "|")+1 : strings.LastIndex(line, "|")]
			mid := inner[len(inner)/2-3 : len(inner)/2+3]
			if !strings.ContainsAny(mid, "@%#*+=") {
				t.Errorf("spike not visible mid-panel: %q", inner)
			}
		}
	}
}

func TestTimeSeriesEmpty(t *testing.T) {
	out := TimeSeries("t", 40, nil, nil)
	if !strings.Contains(out, "t") {
		t.Error("empty series should still emit title")
	}
}

func TestCumulativeCurve(t *testing.T) {
	out := CumulativeCurve("Figure 2", 40, 8, map[string][]float64{
		"all":  {0.2, 0.4, 0.6, 0.8, 1.0},
		"errs": {0.6, 0.9, 0.95, 0.99, 1.0},
	})
	if !strings.Contains(out, "all") || !strings.Contains(out, "errs") {
		t.Errorf("missing series:\n%s", out)
	}
	// Deterministic legend order (sorted).
	if strings.Index(out, "all") > strings.Index(out, "errs") {
		t.Error("series not sorted")
	}
}

func TestWaterfall(t *testing.T) {
	spans := []WaterfallSpan{
		{Name: "txn", Depth: 0, Start: 0, Dur: 21.0, Outcome: "tcp:no-connection", Detail: "active: www:example.com server-outage sev=1.00"},
		{Name: "dns", Depth: 1, Start: 0, Dur: 0.09, Outcome: "ok"},
		{Name: "tcp 198.51.100.7", Depth: 1, Start: 0.09, Dur: 20.91, Outcome: "no-connection", Detail: "blame=www:example.com server-outage"},
	}
	out := Waterfall("client-3 x example.com", 40, spans)
	for _, want := range []string{"client-3 x example.com", "txn", "  dns", "  tcp 198.51.100.7", "blame=", "+21.000s"} {
		if !strings.Contains(out, want) {
			t.Errorf("waterfall missing %q:\n%s", want, out)
		}
	}
	// The root bar spans the full axis; the dns bar does not.
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[1], "|========") {
		t.Errorf("root bar not drawn from origin:\n%s", out)
	}
}

func TestWaterfallEmpty(t *testing.T) {
	if out := Waterfall("empty", 40, nil); !strings.Contains(out, "empty") {
		t.Error("empty waterfall should still emit its title")
	}
}
