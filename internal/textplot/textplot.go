// Package textplot renders the study's figures as ASCII charts for
// terminal output: CDF line plots (Figures 4 and 6), stacked horizontal
// bars (Figures 1 and 3), cumulative-share curves (Figure 2), and
// multi-panel time series (Figures 5 and 7).
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line on a plot.
type Series struct {
	Name string
	X, Y []float64
}

// CDFPlot renders one or more CDF curves on a fixed character grid.
// X values are clamped to [xmin, xmax]; Y is assumed in [0, 1].
func CDFPlot(title, xlabel string, width, height int, xmin, xmax float64, series ...Series) string {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	marks := []byte{'*', '+', 'o', 'x', '#'}
	for si, s := range series {
		mark := marks[si%len(marks)]
		for i := range s.X {
			x := clamp(s.X[i], xmin, xmax)
			y := clamp(s.Y[i], 0, 1)
			col := int((x - xmin) / (xmax - xmin + 1e-12) * float64(width-1))
			row := height - 1 - int(y*float64(height-1))
			grid[row][col] = mark
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for i, row := range grid {
		frac := 1 - float64(i)/float64(height-1)
		fmt.Fprintf(&b, "%5.2f |%s|\n", frac, string(row))
	}
	fmt.Fprintf(&b, "      %s\n", strings.Repeat("-", width+2))
	fmt.Fprintf(&b, "      %-*s%*s\n", width/2+1, fmt.Sprintf("%.3g", xmin), width/2+1, fmt.Sprintf("%.3g", xmax))
	fmt.Fprintf(&b, "      %s\n", center(xlabel, width))
	for si, s := range series {
		fmt.Fprintf(&b, "      %c = %s\n", marks[si%len(marks)], s.Name)
	}
	return b.String()
}

// StackedBar is one bar composed of named fractional segments.
type StackedBar struct {
	Label    string
	Segments []Segment
	// Note is appended after the bar (e.g. the category's overall
	// rate, underlined in the paper's Figure 1).
	Note string
}

// Segment is one portion of a stacked bar.
type Segment struct {
	Name  string
	Value float64 // fraction in [0,1]
	Rune  byte
}

// StackedBars renders horizontal stacked bars (Figures 1 and 3).
func StackedBars(title string, width int, bars []StackedBar) string {
	if width < 20 {
		width = 20
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	maxLabel := 0
	for _, bar := range bars {
		if len(bar.Label) > maxLabel {
			maxLabel = len(bar.Label)
		}
	}
	for _, bar := range bars {
		fmt.Fprintf(&b, "%-*s |", maxLabel, bar.Label)
		used := 0
		for _, seg := range bar.Segments {
			n := int(math.Round(seg.Value * float64(width)))
			if used+n > width {
				n = width - used
			}
			b.Write(bytesRepeat(seg.Rune, n))
			used += n
		}
		b.WriteString(strings.Repeat(" ", width-used))
		fmt.Fprintf(&b, "| %s\n", bar.Note)
	}
	// Legend.
	if len(bars) > 0 {
		fmt.Fprintf(&b, "%-*s  ", maxLabel, "")
		for _, seg := range bars[0].Segments {
			fmt.Fprintf(&b, "%c=%s  ", seg.Rune, seg.Name)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// TimePanel is one panel of a multi-panel time series (Figures 5 and 7).
type TimePanel struct {
	Label string
	Y     []float64
}

// TimeSeries renders aligned sparkline panels over a shared x axis.
// xs holds the x value (e.g. Unix time) of each sample.
func TimeSeries(title string, width int, xs []float64, panels []TimePanel) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if len(xs) == 0 {
		return b.String()
	}
	n := len(xs)
	bucket := func(i int) int { return i * width / n }
	levels := []byte(" .:-=+*#%@")
	for _, p := range panels {
		// Max per bucket.
		agg := make([]float64, width)
		for i, y := range p.Y {
			if i >= n {
				break
			}
			bk := bucket(i)
			if bk >= width {
				bk = width - 1
			}
			if y > agg[bk] {
				agg[bk] = y
			}
		}
		ymax := 0.0
		for _, v := range agg {
			if v > ymax {
				ymax = v
			}
		}
		row := make([]byte, width)
		for i, v := range agg {
			if ymax == 0 {
				row[i] = ' '
				continue
			}
			lvl := int(v / ymax * float64(len(levels)-1))
			row[i] = levels[lvl]
		}
		fmt.Fprintf(&b, "%-22s |%s| max=%.4g\n", p.Label, string(row), ymax)
	}
	fmt.Fprintf(&b, "%-22s  %-*.0f%*.0f\n", "unix time", width/2, xs[0], width/2, xs[n-1])
	return b.String()
}

// WaterfallSpan is one bar of a span waterfall: a named interval at a
// nesting depth, with an outcome tag and optional free-form detail.
type WaterfallSpan struct {
	Name    string
	Depth   int
	Start   float64 // seconds from the trace origin
	Dur     float64 // seconds
	Outcome string
	Detail  string
}

// Waterfall renders a transaction's span tree as indented horizontal
// bars on a shared time axis — the forensics view of one traced
// exemplar. Spans are drawn in the given (pre-order) sequence; detail
// text follows its span on an indented line.
func Waterfall(title string, width int, spans []WaterfallSpan) string {
	if width < 20 {
		width = 20
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if len(spans) == 0 {
		return b.String()
	}
	tmin, tmax := spans[0].Start, spans[0].Start
	for _, s := range spans {
		if s.Start < tmin {
			tmin = s.Start
		}
		if end := s.Start + s.Dur; end > tmax {
			tmax = end
		}
	}
	total := tmax - tmin
	if total <= 0 {
		total = 1e-9
	}
	const labelW = 26
	for _, s := range spans {
		label := strings.Repeat("  ", s.Depth) + s.Name
		if len(label) > labelW {
			label = label[:labelW]
		}
		row := bytesRepeat(' ', width)
		lo := int((s.Start - tmin) / total * float64(width))
		hi := int((s.Start + s.Dur - tmin) / total * float64(width))
		if lo >= width {
			lo = width - 1
		}
		if hi <= lo {
			hi = lo + 1 // zero-length spans still mark their instant
		}
		if hi > width {
			hi = width
		}
		for i := lo; i < hi; i++ {
			row[i] = '='
		}
		fmt.Fprintf(&b, "%-*s |%s| %9.3fs %s\n", labelW, label, row, s.Dur, s.Outcome)
		if s.Detail != "" {
			fmt.Fprintf(&b, "%-*s    %s\n", labelW, "", s.Detail)
		}
	}
	fmt.Fprintf(&b, "%-*s  0s%*s\n", labelW, "", width, fmt.Sprintf("+%.3fs", total))
	return b.String()
}

// CumulativeCurve renders a rank-vs-cumulative-share curve (Figure 2).
func CumulativeCurve(title string, width, height int, curves map[string][]float64) string {
	var series []Series
	for name, ys := range curves {
		xs := make([]float64, len(ys))
		for i := range ys {
			if len(ys) > 1 {
				xs[i] = float64(i) / float64(len(ys)-1)
			}
		}
		series = append(series, Series{Name: name, X: xs, Y: ys})
	}
	// Sort series by name for deterministic output.
	for i := 0; i < len(series); i++ {
		for j := i + 1; j < len(series); j++ {
			if series[j].Name < series[i].Name {
				series[i], series[j] = series[j], series[i]
			}
		}
	}
	return CDFPlot(title, "domain rank (normalized)", width, height, 0, 1, series...)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func center(s string, width int) string {
	if len(s) >= width {
		return s
	}
	pad := (width - len(s)) / 2
	return strings.Repeat(" ", pad) + s
}

func bytesRepeat(c byte, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = c
	}
	return out
}
