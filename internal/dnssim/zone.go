package dnssim

import (
	"net/netip"
	"sort"
	"strings"
	"time"

	"webfail/internal/dnswire"
	"webfail/internal/simnet"
)

// Status models the health of a DNS server at an instant.
type Status uint8

// Server health states that the fault layer can impose.
const (
	// StatusUp answers normally.
	StatusUp Status = iota
	// StatusDown drops every query — the server or its connectivity is
	// gone. Clients observe a timeout.
	StatusDown
	// StatusServFail answers every query with SERVFAIL — the "buggy or
	// incorrectly configured authoritative server" of Section 4.2.
	StatusServFail
	// StatusNXDomain answers every query with NXDOMAIN even for names it
	// should resolve — the misconfiguration observed for
	// www.brazzil.com and www.espn.com in the paper.
	StatusNXDomain
)

func (s Status) String() string {
	switch s {
	case StatusUp:
		return "up"
	case StatusDown:
		return "down"
	case StatusServFail:
		return "servfail"
	case StatusNXDomain:
		return "nxdomain"
	default:
		return "unknown"
	}
}

// StatusFunc resolves a server's health at a simulated instant. A nil
// StatusFunc means always up.
type StatusFunc func(now simnet.Time) Status

// Delegation names the authoritative servers for a child zone, with glue.
type Delegation struct {
	NSNames []string
	Glue    map[string]netip.Addr
}

// Zone is one cut of the namespace served authoritatively, with optional
// delegations to children.
type Zone struct {
	// Apex is the zone origin, canonical form; "" is the root zone.
	Apex string
	// RRs maps owner names to their records (A and CNAME).
	RRs map[string][]dnswire.RR
	// Children maps child zone apexes to their delegations.
	Children map[string]Delegation
}

// NewZone creates an empty zone at apex.
func NewZone(apex string) *Zone {
	return &Zone{
		Apex:     dnswire.Canonical(apex),
		RRs:      make(map[string][]dnswire.RR),
		Children: make(map[string]Delegation),
	}
}

// AddA records an address for name.
func (z *Zone) AddA(name string, addr netip.Addr, ttl uint32) {
	name = dnswire.Canonical(name)
	z.RRs[name] = append(z.RRs[name], dnswire.RR{Name: name, Type: dnswire.TypeA, TTL: ttl, A: addr})
}

// AddCNAME records an alias.
func (z *Zone) AddCNAME(name, target string, ttl uint32) {
	name = dnswire.Canonical(name)
	z.RRs[name] = append(z.RRs[name], dnswire.RR{Name: name, Type: dnswire.TypeCNAME, TTL: ttl, Target: dnswire.Canonical(target)})
}

// Delegate records that child (a zone apex under this zone) is served by
// the named servers at the given addresses.
func (z *Zone) Delegate(child string, ns map[string]netip.Addr) {
	child = dnswire.Canonical(child)
	d := Delegation{Glue: make(map[string]netip.Addr, len(ns))}
	for name, addr := range ns {
		d.NSNames = append(d.NSNames, dnswire.Canonical(name))
		d.Glue[dnswire.Canonical(name)] = addr
	}
	sort.Strings(d.NSNames)
	z.Children[child] = d
}

// inZone reports whether name is at or below the zone apex.
func (z *Zone) inZone(name string) bool {
	if z.Apex == "" {
		return true
	}
	return name == z.Apex || strings.HasSuffix(name, "."+z.Apex)
}

// matchDelegation returns the closest enclosing delegation for name.
func (z *Zone) matchDelegation(name string) (string, Delegation, bool) {
	// Walk suffixes from most to least specific so the deepest
	// delegation wins.
	for cand := name; cand != ""; {
		if d, ok := z.Children[cand]; ok && cand != z.Apex {
			return cand, d, true
		}
		_, rest, found := strings.Cut(cand, ".")
		if !found {
			break
		}
		cand = rest
	}
	return "", Delegation{}, false
}

// AuthServer is an authoritative DNS server attached to a simnet host. It
// may serve several zones (as real TLD operators do).
type AuthServer struct {
	Host   *simnet.Host
	Status StatusFunc

	zones []*Zone
	// ProcessingDelay models server think time before a response.
	ProcessingDelay time.Duration

	// rot drives round-robin rotation of multi-A answers, the standard
	// BIND behaviour that spreads load across replicas (and the reason
	// every replica accounts for a fair share of connections in the
	// Section 4.5 census). It is keyed by query source so each
	// resolver sees its own strict rotation: the rotation a client's
	// lookup observes then depends only on that client's site's own
	// query history, which keeps sharded packet runs byte-identical to
	// serial ones (shard boundaries never split a site).
	rot map[netip.Addr]uint32
	enc []byte // recycled response-encoding scratch
}

// NewAuthServer binds an authoritative server to the host's port 53.
func NewAuthServer(host *simnet.Host, zones ...*Zone) *AuthServer {
	s := &AuthServer{Host: host, zones: zones, ProcessingDelay: 500 * time.Microsecond}
	if err := host.Bind(simnet.UDP, Port, s.handle); err != nil {
		panic("dnssim: auth server bind: " + err.Error())
	}
	return s
}

// AddZone attaches another zone to this server.
func (s *AuthServer) AddZone(z *Zone) { s.zones = append(s.zones, z) }

func (s *AuthServer) status() Status {
	if s.Status == nil {
		return StatusUp
	}
	return s.Status(s.Host.Now())
}

func (s *AuthServer) handle(pkt *simnet.Packet) {
	q, srcPort, ok := decodeQuery(pkt)
	if !ok {
		return
	}
	switch s.status() {
	case StatusDown:
		return // silence: client times out
	case StatusServFail:
		replyUDP(s.Host, &s.enc, pkt.Src, srcPort, dnswire.NewResponse(q, dnswire.RCodeServFail, false))
		return
	case StatusNXDomain:
		replyUDP(s.Host, &s.enc, pkt.Src, srcPort, dnswire.NewResponse(q, dnswire.RCodeNXDomain, true))
		return
	}
	resp := s.answer(q, pkt.Src)
	src, port := pkt.Src, srcPort
	s.Host.Network().Sched.After(s.ProcessingDelay, func() {
		if s.status() == StatusDown {
			return
		}
		replyUDP(s.Host, &s.enc, src, port, resp)
	})
}

// answer produces the authoritative response for a well-formed query
// from src.
func (s *AuthServer) answer(q *dnswire.Message, src netip.Addr) *dnswire.Message {
	question := q.Questions[0]
	name := question.Name

	// Pick the most specific zone this server serves for the name.
	var zone *Zone
	for _, z := range s.zones {
		if !z.inZone(name) {
			continue
		}
		if zone == nil || len(z.Apex) > len(zone.Apex) {
			zone = z
		}
	}
	if zone == nil {
		return dnswire.NewResponse(q, dnswire.RCodeRefused, false)
	}

	resp := dnswire.NewResponse(q, dnswire.RCodeNoError, true)

	// Follow CNAME chains inside the zone, collecting answers.
	seen := 0
	for {
		rrs, ok := zone.RRs[name]
		if ok {
			var cname string
			var answers []dnswire.RR
			for _, rr := range rrs {
				if rr.Type == dnswire.TypeCNAME {
					cname = rr.Target
					resp.Answers = append(resp.Answers, rr)
				} else if rr.Type == question.Type {
					answers = append(answers, rr)
				}
			}
			if n := len(answers); n > 1 {
				if s.rot == nil {
					s.rot = make(map[netip.Addr]uint32)
				}
				s.rot[src]++
				off := int(s.rot[src]) % n
				answers = append(answers[off:len(answers):len(answers)], answers[:off]...)
			}
			resp.Answers = append(resp.Answers, answers...)
			if cname != "" && seen < 8 {
				seen++
				name = cname
				if !zone.inZone(name) {
					// Target outside the zone: the resolver
					// restarts resolution there.
					return resp
				}
				continue
			}
			return resp
		}
		// No records: referral or NXDOMAIN.
		if child, d, ok := zone.matchDelegation(name); ok {
			resp.Header.Authoritative = false
			for _, nsName := range d.NSNames {
				resp.Authority = append(resp.Authority, dnswire.RR{
					Name: child, Type: dnswire.TypeNS, TTL: 86400, Target: nsName,
				})
				if glue, ok := d.Glue[nsName]; ok {
					resp.Additional = append(resp.Additional, dnswire.RR{
						Name: nsName, Type: dnswire.TypeA, TTL: 86400, A: glue,
					})
				}
			}
			return resp
		}
		resp.Header.RCode = dnswire.RCodeNXDomain
		return resp
	}
}
