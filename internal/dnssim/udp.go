// Package dnssim implements the simulated DNS system: authoritative
// servers arranged in a root → TLD → zone hierarchy, a caching recursive
// local DNS server (LDNS), a client stub resolver, and a dig-style
// iterative tracer — all exchanging real RFC 1035 messages over simulated
// UDP.
//
// The failure behaviours of each component are driven by externally
// supplied status functions, so the fault-injection layer can make an LDNS
// unreachable (producing the paper's dominant "LDNS timeout" class), an
// authoritative server unreachable ("non-LDNS timeout"), or misconfigured
// (SERVFAIL/NXDOMAIN "error response"), and the measurement harness
// observes exactly what a January-2005 wget + dig would have observed.
package dnssim

import (
	"net/netip"
	"time"

	"webfail/internal/dnswire"
	"webfail/internal/netwire"
	"webfail/internal/simnet"
)

// Port is the DNS server port.
const Port = 53

// exchanger issues DNS queries over simulated UDP and matches responses to
// outstanding queries by (port, message ID), with per-query timeouts. One
// exchanger serves a whole host (LDNS or client); it owns the host's
// ephemeral UDP port space.
type exchanger struct {
	host   *simnet.Host
	nextID uint16
}

func newExchanger(host *simnet.Host) *exchanger {
	return &exchanger{host: host}
}

// query sends msg to server and calls done exactly once: with the decoded
// response, or with nil after the timeout. The ephemeral port is released
// either way. Malformed or mismatched responses are ignored (they cannot
// complete the query), exactly as a real resolver ignores spoofed noise.
func (e *exchanger) query(server netip.Addr, q *dnswire.Message, timeout time.Duration, done func(*dnswire.Message)) {
	e.nextID++
	q.Header.ID = e.nextID
	payload, err := dnswire.Encode(q)
	if err != nil {
		// Queries are built by this package; an encode failure is a
		// bug, not a network condition.
		panic("dnssim: bad query: " + err.Error())
	}

	port := e.host.EphemeralPort(simnet.UDP)
	finished := false
	var timer *simnet.Timer

	finish := func(m *dnswire.Message) {
		if finished {
			return
		}
		finished = true
		timer.Stop()
		e.host.Unbind(simnet.UDP, port)
		done(m)
	}

	wantID := q.Header.ID
	if err := e.host.Bind(simnet.UDP, port, func(pkt *simnet.Packet) {
		_, transport, err := netwire.DecodeIPv4(pkt.Bytes)
		if err != nil {
			return
		}
		_, body, err := netwire.DecodeUDP(transport, pkt.Src, pkt.Dst)
		if err != nil {
			return
		}
		m, err := dnswire.Decode(body)
		if err != nil || !m.Header.Response || m.Header.ID != wantID {
			return
		}
		if pkt.Src != server {
			return
		}
		finish(m)
	}); err != nil {
		panic("dnssim: ephemeral bind: " + err.Error())
	}

	timer = e.host.Network().Sched.AfterTimer(timeout, func() { finish(nil) })
	sendUDP(e.host, port, server, Port, payload)
}

// sendUDP wraps a DNS payload in UDP and IPv4 and transmits it.
func sendUDP(host *simnet.Host, srcPort uint16, dst netip.Addr, dstPort uint16, payload []byte) {
	dgram, err := netwire.EncodeUDP(nil, &netwire.UDPHeader{SrcPort: srcPort, DstPort: dstPort}, host.Addr, dst, payload)
	if err != nil {
		panic("dnssim: udp encode: " + err.Error())
	}
	b, err := netwire.EncodeIPv4(nil, &netwire.IPv4{Protocol: uint8(simnet.UDP), Src: host.Addr, Dst: dst}, dgram)
	if err != nil {
		panic("dnssim: ip encode: " + err.Error())
	}
	host.Send(&simnet.Packet{Src: host.Addr, Dst: dst, Proto: simnet.UDP, Bytes: b})
}

// replyUDP sends a DNS response back to the source of a received packet.
func replyUDP(host *simnet.Host, to netip.Addr, toPort uint16, m *dnswire.Message) {
	payload, err := dnswire.Encode(m)
	if err != nil {
		panic("dnssim: response encode: " + err.Error())
	}
	sendUDP(host, Port, to, toPort, payload)
}

// decodeQuery extracts a DNS query and the client's source port from a
// received packet, returning ok=false for anything malformed.
func decodeQuery(pkt *simnet.Packet) (q *dnswire.Message, srcPort uint16, ok bool) {
	_, transport, err := netwire.DecodeIPv4(pkt.Bytes)
	if err != nil {
		return nil, 0, false
	}
	uh, body, err := netwire.DecodeUDP(transport, pkt.Src, pkt.Dst)
	if err != nil {
		return nil, 0, false
	}
	m, err := dnswire.Decode(body)
	if err != nil || m.Header.Response || len(m.Questions) == 0 {
		return nil, 0, false
	}
	return m, uh.SrcPort, true
}
