// Package dnssim implements the simulated DNS system: authoritative
// servers arranged in a root → TLD → zone hierarchy, a caching recursive
// local DNS server (LDNS), a client stub resolver, and a dig-style
// iterative tracer — all exchanging real RFC 1035 messages over simulated
// UDP.
//
// The failure behaviours of each component are driven by externally
// supplied status functions, so the fault-injection layer can make an LDNS
// unreachable (producing the paper's dominant "LDNS timeout" class), an
// authoritative server unreachable ("non-LDNS timeout"), or misconfigured
// (SERVFAIL/NXDOMAIN "error response"), and the measurement harness
// observes exactly what a January-2005 wget + dig would have observed.
package dnssim

import (
	"net/netip"
	"time"

	"webfail/internal/dnswire"
	"webfail/internal/netwire"
	"webfail/internal/simnet"
)

// Port is the DNS server port.
const Port = 53

// exchanger issues DNS queries over simulated UDP and matches responses to
// outstanding queries by (port, message ID), with per-query timeouts. One
// exchanger serves a whole host (LDNS or client); it owns the host's
// ephemeral UDP port space.
type exchanger struct {
	host   *simnet.Host
	nextID uint16
	enc    []byte // recycled query-encoding scratch
	// free pools finished pendingQuery states (with their cached method
	// closures) so the per-query hot path allocates nothing.
	free []*pendingQuery
}

func newExchanger(host *simnet.Host) *exchanger {
	return &exchanger{host: host}
}

// pendingQuery is the in-flight state of one query. onPacket/onTimeout are
// method values created once per pooled instance; they capture only the
// (stable) pointer, so reusing the instance reuses the closures.
type pendingQuery struct {
	e         *exchanger
	server    netip.Addr
	wantID    uint16
	port      uint16
	done      func(*dnswire.Message)
	timer     simnet.TimerHandle
	finished  bool
	onPacket  func(*simnet.Packet)
	onTimeout func()
}

func (pq *pendingQuery) finish(m *dnswire.Message) {
	if pq.finished {
		return
	}
	pq.finished = true
	pq.timer.Stop()
	pq.e.host.Unbind(simnet.UDP, pq.port)
	done := pq.done
	pq.done = nil
	pq.e.free = append(pq.e.free, pq)
	done(m)
}

func (pq *pendingQuery) handlePacket(pkt *simnet.Packet) {
	if pq.finished {
		return
	}
	var iph netwire.IPv4
	var uh netwire.UDPHeader
	transport, err := netwire.DecodeIPv4Into(pkt.Bytes, &iph)
	if err != nil {
		return
	}
	body, err := netwire.DecodeUDPInto(transport, &uh)
	if err != nil {
		return
	}
	m, err := dnswire.Decode(body)
	if err != nil || !m.Header.Response || m.Header.ID != pq.wantID {
		return
	}
	if pkt.Src != pq.server {
		return
	}
	pq.finish(m)
}

func (pq *pendingQuery) handleTimeout() { pq.finish(nil) }

// query sends msg to server and calls done exactly once: with the decoded
// response, or with nil after the timeout. The ephemeral port is released
// either way. Malformed or mismatched responses are ignored (they cannot
// complete the query), exactly as a real resolver ignores spoofed noise.
func (e *exchanger) query(server netip.Addr, q *dnswire.Message, timeout time.Duration, done func(*dnswire.Message)) {
	e.nextID++
	q.Header.ID = e.nextID
	payload, err := dnswire.EncodeAppend(e.enc[:0], q)
	e.enc = payload
	if err != nil {
		// Queries are built by this package; an encode failure is a
		// bug, not a network condition.
		panic("dnssim: bad query: " + err.Error())
	}

	var pq *pendingQuery
	if n := len(e.free); n > 0 {
		pq = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		pq = &pendingQuery{e: e}
		pq.onPacket = pq.handlePacket
		pq.onTimeout = pq.handleTimeout
	}
	pq.server = server
	pq.wantID = q.Header.ID
	pq.port = e.host.EphemeralPort(simnet.UDP)
	pq.done = done
	pq.finished = false

	if err := e.host.Bind(simnet.UDP, pq.port, pq.onPacket); err != nil {
		panic("dnssim: ephemeral bind: " + err.Error())
	}
	pq.timer = e.host.Network().Sched.AfterHandle(timeout, pq.onTimeout)
	sendUDP(e.host, pq.port, server, Port, payload)
}

// sendUDP wraps a DNS payload in UDP and IPv4 and transmits it through a
// pooled packet buffer (recycled by the network after delivery or drop).
func sendUDP(host *simnet.Host, srcPort uint16, dst netip.Addr, dstPort uint16, payload []byte) {
	pkt := host.Network().AllocPacket()
	b, err := netwire.AppendUDPPacket(pkt.Bytes[:0], host.Addr, dst,
		&netwire.UDPHeader{SrcPort: srcPort, DstPort: dstPort}, payload)
	if err != nil {
		panic("dnssim: udp encode: " + err.Error())
	}
	pkt.Src, pkt.Dst, pkt.Proto, pkt.Bytes = host.Addr, dst, simnet.UDP, b
	host.Send(pkt)
}

// replyUDP sends a DNS response back to the source of a received packet.
// scratch is the caller's recycled encoding buffer (the payload is copied
// into a pooled packet before this returns).
func replyUDP(host *simnet.Host, scratch *[]byte, to netip.Addr, toPort uint16, m *dnswire.Message) {
	payload, err := dnswire.EncodeAppend((*scratch)[:0], m)
	*scratch = payload
	if err != nil {
		panic("dnssim: response encode: " + err.Error())
	}
	sendUDP(host, Port, to, toPort, payload)
}

// decodeQuery extracts a DNS query and the client's source port from a
// received packet, returning ok=false for anything malformed.
func decodeQuery(pkt *simnet.Packet) (q *dnswire.Message, srcPort uint16, ok bool) {
	var iph netwire.IPv4
	var uh netwire.UDPHeader
	transport, err := netwire.DecodeIPv4Into(pkt.Bytes, &iph)
	if err != nil {
		return nil, 0, false
	}
	body, err := netwire.DecodeUDPInto(transport, &uh)
	if err != nil {
		return nil, 0, false
	}
	m, err := dnswire.Decode(body)
	if err != nil || m.Header.Response || len(m.Questions) == 0 {
		return nil, 0, false
	}
	return m, uh.SrcPort, true
}
