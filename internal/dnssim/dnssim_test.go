package dnssim

import (
	"net/netip"
	"testing"
	"time"

	"webfail/internal/dnswire"
	"webfail/internal/simnet"
)

// fixture wires a miniature DNS hierarchy:
//
//	root (1.0.0.1) delegates com -> TLD (1.0.0.2)
//	TLD delegates example.com -> auth (1.0.0.3)
//	auth serves www.example.com A 5.5.5.5 / 5.5.5.6 and a CNAME alias
//	LDNS at 2.0.0.1, client at 3.0.0.1
type fixture struct {
	net    *simnet.Network
	root   *AuthServer
	tld    *AuthServer
	auth   *AuthServer
	ldns   *LDNS
	stub   *StubResolver
	dig    *Dig
	client *simnet.Host
}

var (
	rootAddr   = netip.MustParseAddr("1.0.0.1")
	tldAddr    = netip.MustParseAddr("1.0.0.2")
	authAddr   = netip.MustParseAddr("1.0.0.3")
	ldnsAddr   = netip.MustParseAddr("2.0.0.1")
	clientAddr = netip.MustParseAddr("3.0.0.1")
	wwwAddr1   = netip.MustParseAddr("5.5.5.5")
	wwwAddr2   = netip.MustParseAddr("5.5.5.6")
)

func newFixture(t *testing.T) *fixture {
	t.Helper()
	n := simnet.NewNetwork(1)

	rootHost := n.AddHost("root", rootAddr)
	rootZone := NewZone("")
	rootZone.Delegate("com", map[string]netip.Addr{"a.gtld.net": tldAddr})
	root := NewAuthServer(rootHost, rootZone)

	tldHost := n.AddHost("tld", tldAddr)
	tldZone := NewZone("com")
	tldZone.Delegate("example.com", map[string]netip.Addr{"ns1.example.com": authAddr})
	tld := NewAuthServer(tldHost, tldZone)

	authHost := n.AddHost("auth", authAddr)
	authZone := NewZone("example.com")
	authZone.AddA("www.example.com", wwwAddr1, 60)
	authZone.AddA("www.example.com", wwwAddr2, 60)
	authZone.AddCNAME("alias.example.com", "www.example.com", 60)
	auth := NewAuthServer(authHost, authZone)

	ldnsHost := n.AddHost("ldns", ldnsAddr)
	ldns := NewLDNS(ldnsHost, []netip.Addr{rootAddr})

	client := n.AddHost("client", clientAddr)
	stub := NewStubResolver(client, ldnsAddr)
	dig := NewDig(client, ldnsAddr, []netip.Addr{rootAddr})

	return &fixture{net: n, root: root, tld: tld, auth: auth, ldns: ldns, stub: stub, dig: dig, client: client}
}

func (f *fixture) lookup(t *testing.T, name string) Result {
	t.Helper()
	var got *Result
	f.stub.LookupA(name, func(r Result) { got = &r })
	f.net.Sched.Run()
	if got == nil {
		t.Fatal("lookup never completed")
	}
	return *got
}

func (f *fixture) trace(t *testing.T, name string) *DigReport {
	t.Helper()
	var rep *DigReport
	f.dig.Trace(name, func(r *DigReport) { rep = r })
	f.net.Sched.Run()
	if rep == nil {
		t.Fatal("trace never completed")
	}
	return rep
}

func TestLookupSuccess(t *testing.T) {
	f := newFixture(t)
	r := f.lookup(t, "www.example.com")
	if r.Kind != ResultOK {
		t.Fatalf("kind = %v, want ok", r.Kind)
	}
	// Answers rotate round-robin; both replicas must be present.
	if len(r.Addrs) != 2 || (r.Addrs[0] != wwwAddr1 && r.Addrs[0] != wwwAddr2) ||
		r.Addrs[0] == r.Addrs[1] {
		t.Errorf("addrs = %v", r.Addrs)
	}
	if r.RTT <= 0 || r.RTT > time.Second {
		t.Errorf("RTT = %v, want sub-second for full recursion", r.RTT)
	}
}

func TestLookupCNAME(t *testing.T) {
	f := newFixture(t)
	r := f.lookup(t, "alias.example.com")
	if r.Kind != ResultOK || len(r.Addrs) != 2 {
		t.Fatalf("CNAME lookup = %+v", r)
	}
}

func TestLookupNXDomain(t *testing.T) {
	f := newFixture(t)
	r := f.lookup(t, "nonexistent.example.com")
	if r.Kind != ResultError || r.RCode != dnswire.RCodeNXDomain {
		t.Fatalf("got %+v, want NXDOMAIN error", r)
	}
}

func TestLookupCacheHit(t *testing.T) {
	f := newFixture(t)
	r1 := f.lookup(t, "www.example.com")
	recursionsAfterFirst := f.ldns.Recursions
	r2 := f.lookup(t, "www.example.com")
	if f.ldns.Recursions != recursionsAfterFirst {
		t.Error("second lookup re-recursed despite warm cache")
	}
	if f.ldns.Hits != 1 {
		t.Errorf("hits = %d, want 1", f.ldns.Hits)
	}
	if r2.Kind != ResultOK || len(r2.Addrs) != len(r1.Addrs) {
		t.Errorf("cached result = %+v", r2)
	}
	if r2.RTT >= r1.RTT {
		t.Errorf("cached RTT %v not faster than cold %v", r2.RTT, r1.RTT)
	}
}

func TestFlushCache(t *testing.T) {
	f := newFixture(t)
	f.lookup(t, "www.example.com")
	f.ldns.FlushCache()
	f.lookup(t, "www.example.com")
	if f.ldns.Recursions != 2 {
		t.Errorf("recursions = %d, want 2 after flush", f.ldns.Recursions)
	}
}

func TestLDNSDownIsStubTimeout(t *testing.T) {
	f := newFixture(t)
	f.ldns.Status = func(simnet.Time) Status { return StatusDown }
	r := f.lookup(t, "www.example.com")
	if r.Kind != ResultTimeout {
		t.Fatalf("kind = %v, want timeout", r.Kind)
	}
	// Total elapsed equals the full retry schedule.
	want := 11 * time.Second
	if r.RTT != want {
		t.Errorf("RTT = %v, want %v", r.RTT, want)
	}
}

func TestAuthDownIsStubTimeoutButLDNSResponsive(t *testing.T) {
	f := newFixture(t)
	f.auth.Status = func(simnet.Time) Status { return StatusDown }
	r := f.lookup(t, "www.example.com")
	if r.Kind != ResultTimeout {
		t.Fatalf("kind = %v, want timeout (stub gives up before LDNS)", r.Kind)
	}
	rep := f.trace(t, "www.example.com")
	if !rep.LDNSResponsive {
		t.Error("LDNS should be responsive")
	}
	if got := rep.Classify(); got != ClassNonLDNSTimeout {
		t.Errorf("classify = %v, want non-ldns-timeout", got)
	}
}

func TestDigClassifyLDNSTimeout(t *testing.T) {
	f := newFixture(t)
	f.ldns.Status = func(simnet.Time) Status { return StatusDown }
	// With the LDNS down but the hierarchy up, dig still completes the
	// iterative walk — but the failure classifies as LDNS timeout
	// because the direct probe went unanswered and that is what broke
	// the client's lookup.
	rep := f.trace(t, "www.example.com")
	if rep.LDNSResponsive {
		t.Error("LDNS probe should time out")
	}
	if got := rep.Classify(); got != ClassLDNSTimeout {
		t.Errorf("classify = %v, want ldns-timeout", got)
	}
}

func TestDigClassifySuccess(t *testing.T) {
	f := newFixture(t)
	rep := f.trace(t, "www.example.com")
	if got := rep.Classify(); got != ClassSuccess {
		t.Errorf("classify = %v, want success", got)
	}
	if len(rep.Steps) < 3 {
		t.Errorf("expected >=3 hierarchy steps, got %d: %+v", len(rep.Steps), rep.Steps)
	}
}

func TestDigClassifyErrorResponse(t *testing.T) {
	f := newFixture(t)
	f.auth.Status = func(simnet.Time) Status { return StatusNXDomain }
	r := f.lookup(t, "www.example.com")
	if r.Kind != ResultError || r.RCode != dnswire.RCodeNXDomain {
		t.Fatalf("lookup = %+v, want NXDOMAIN", r)
	}
	rep := f.trace(t, "www.example.com")
	if got := rep.Classify(); got != ClassErrorResponse {
		t.Errorf("classify = %v, want error-response", got)
	}
}

func TestServFail(t *testing.T) {
	f := newFixture(t)
	f.auth.Status = func(simnet.Time) Status { return StatusServFail }
	r := f.lookup(t, "www.example.com")
	if r.Kind != ResultError || r.RCode != dnswire.RCodeServFail {
		t.Fatalf("lookup = %+v, want SERVFAIL", r)
	}
}

func TestAuthRecoversMidExperiment(t *testing.T) {
	f := newFixture(t)
	cutoff := simnet.Time(30 * time.Second)
	f.auth.Status = func(now simnet.Time) Status {
		if now < cutoff {
			return StatusDown
		}
		return StatusUp
	}
	r := f.lookup(t, "www.example.com")
	if r.Kind != ResultTimeout {
		t.Fatalf("first lookup = %v, want timeout", r.Kind)
	}
	// Advance past recovery, then look up again.
	f.net.Sched.RunUntil(simnet.Time(40 * time.Second))
	f.ldns.FlushCache()
	var got *Result
	f.stub.LookupA("www.example.com", func(r Result) { got = &r })
	f.net.Sched.Run()
	if got == nil || got.Kind != ResultOK {
		t.Fatalf("post-recovery lookup = %+v, want ok", got)
	}
}

func TestTLDServerSharedByZones(t *testing.T) {
	// One server can serve multiple zones; the most specific apex wins.
	n := simnet.NewNetwork(2)
	srvHost := n.AddHost("multi", rootAddr)
	rootZone := NewZone("")
	rootZone.Delegate("com", map[string]netip.Addr{"ns.com": rootAddr})
	comZone := NewZone("com")
	comZone.AddA("direct.com", wwwAddr1, 60)
	NewAuthServer(srvHost, rootZone, comZone)

	ldnsHost := n.AddHost("ldns", ldnsAddr)
	ldns := NewLDNS(ldnsHost, []netip.Addr{rootAddr})
	_ = ldns
	client := n.AddHost("client", clientAddr)
	stub := NewStubResolver(client, ldnsAddr)

	var got *Result
	stub.LookupA("direct.com", func(r Result) { got = &r })
	n.Sched.Run()
	if got == nil || got.Kind != ResultOK || got.Addrs[0] != wwwAddr1 {
		t.Fatalf("multi-zone lookup = %+v", got)
	}
}

func TestUnknownTLD(t *testing.T) {
	f := newFixture(t)
	r := f.lookup(t, "www.example.zz")
	// Root has no delegation for .zz: authoritative NXDOMAIN.
	if r.Kind != ResultError || r.RCode != dnswire.RCodeNXDomain {
		t.Fatalf("lookup = %+v, want NXDOMAIN", r)
	}
}

func TestStubRetriesThroughTransientLoss(t *testing.T) {
	f := newFixture(t)
	// Drop everything for the first 2 seconds; the stub's retry at 3 s
	// should then succeed.
	f.net.SetPathFunc(func(src, dst netip.Addr, now simnet.Time) simnet.PathState {
		if now < simnet.Time(2*time.Second) {
			return simnet.PathState{Latency: time.Millisecond, Down: true}
		}
		return simnet.PathState{Latency: time.Millisecond}
	})
	r := f.lookup(t, "www.example.com")
	if r.Kind != ResultOK {
		t.Fatalf("lookup = %+v, want ok after retry", r)
	}
	if r.RTT < 3*time.Second {
		t.Errorf("RTT = %v, expected to include a retry delay", r.RTT)
	}
}

func TestZoneMatchDelegation(t *testing.T) {
	z := NewZone("com")
	z.Delegate("example.com", map[string]netip.Addr{"ns1": authAddr})
	z.Delegate("deep.example.com", map[string]netip.Addr{"ns2": tldAddr})
	if apex, _, ok := z.matchDelegation("www.deep.example.com"); !ok || apex != "deep.example.com" {
		t.Errorf("matchDelegation deep = %q, %v", apex, ok)
	}
	if apex, _, ok := z.matchDelegation("www.example.com"); !ok || apex != "example.com" {
		t.Errorf("matchDelegation = %q, %v", apex, ok)
	}
	if _, _, ok := z.matchDelegation("other.org"); ok {
		t.Error("matchDelegation matched foreign name")
	}
}

func TestStatusStrings(t *testing.T) {
	if StatusUp.String() != "up" || StatusDown.String() != "down" {
		t.Error("status strings")
	}
	if ClassLDNSTimeout.String() != "ldns-timeout" || ClassNonLDNSTimeout.String() != "non-ldns-timeout" {
		t.Error("class strings")
	}
	if ResultTimeout.String() != "timeout" {
		t.Error("result strings")
	}
}

func TestLDNSCacheExpiry(t *testing.T) {
	f := newFixture(t)
	f.lookup(t, "www.example.com")
	if f.ldns.Recursions != 1 {
		t.Fatalf("recursions = %d", f.ldns.Recursions)
	}
	// Within the 60 s cache TTL: served from cache.
	f.net.Sched.RunUntil(simnet.Time(30 * time.Second))
	f.lookup(t, "www.example.com")
	if f.ldns.Recursions != 1 {
		t.Errorf("recursed within TTL (recursions = %d)", f.ldns.Recursions)
	}
	// Past the TTL: a fresh recursion.
	f.net.Sched.RunUntil(simnet.Time(2 * time.Minute))
	f.lookup(t, "www.example.com")
	if f.ldns.Recursions != 2 {
		t.Errorf("no recursion after TTL expiry (recursions = %d)", f.ldns.Recursions)
	}
}

func TestConcurrentLookupsSameName(t *testing.T) {
	// Two clients of the same LDNS query the same cold name at once;
	// both must get answers.
	f := newFixture(t)
	other := f.net.AddHost("client2", netip.MustParseAddr("3.0.0.2"))
	stub2 := NewStubResolver(other, ldnsAddr)
	var r1, r2 *Result
	f.stub.LookupA("www.example.com", func(r Result) { r1 = &r })
	stub2.LookupA("www.example.com", func(r Result) { r2 = &r })
	f.net.Sched.Run()
	if r1 == nil || r1.Kind != ResultOK {
		t.Errorf("client1 = %+v", r1)
	}
	if r2 == nil || r2.Kind != ResultOK {
		t.Errorf("client2 = %+v", r2)
	}
}

func TestProbeNameAnsweredWhileRecursionImpossible(t *testing.T) {
	// Even with the whole upstream hierarchy dead, the LDNS answers the
	// responsiveness probe from its hints — the property the dig
	// classifier depends on.
	f := newFixture(t)
	dead := func(simnet.Time) Status { return StatusDown }
	f.root.Status = dead
	f.tld.Status = dead
	f.auth.Status = dead
	var got *Result
	f.stub.LookupA(ProbeName, func(r Result) { got = &r })
	f.net.Sched.Run()
	if got == nil || got.Kind != ResultOK || len(got.Addrs) == 0 {
		t.Fatalf("probe = %+v", got)
	}
}

func TestCNAMEAcrossZones(t *testing.T) {
	// alias.example.com -> www.other.org: the CNAME target lives in a
	// different zone on a different server, forcing the resolver to
	// restart from the roots.
	n := simnet.NewNetwork(9)
	rootHost := n.AddHost("root", rootAddr)
	rootZone := NewZone("")
	rootZone.Delegate("example.com", map[string]netip.Addr{"ns1": tldAddr})
	rootZone.Delegate("other.org", map[string]netip.Addr{"ns2": authAddr})
	NewAuthServer(rootHost, rootZone)

	comHost := n.AddHost("com-auth", tldAddr)
	comZone := NewZone("example.com")
	comZone.AddCNAME("alias.example.com", "www.other.org", 60)
	NewAuthServer(comHost, comZone)

	orgHost := n.AddHost("org-auth", authAddr)
	orgZone := NewZone("other.org")
	orgZone.AddA("www.other.org", wwwAddr1, 60)
	NewAuthServer(orgHost, orgZone)

	ldnsHost := n.AddHost("ldns", ldnsAddr)
	NewLDNS(ldnsHost, []netip.Addr{rootAddr})
	client := n.AddHost("client", clientAddr)
	stub := NewStubResolver(client, ldnsAddr)

	var got *Result
	stub.LookupA("alias.example.com", func(r Result) { got = &r })
	n.Sched.Run()
	if got == nil || got.Kind != ResultOK || len(got.Addrs) != 1 || got.Addrs[0] != wwwAddr1 {
		t.Fatalf("cross-zone CNAME lookup = %+v", got)
	}
}
