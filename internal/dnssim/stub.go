package dnssim

import (
	"net/netip"
	"time"

	"webfail/internal/dnswire"
	"webfail/internal/simnet"
)

// ResultKind classifies the outcome of a stub lookup.
type ResultKind uint8

// Stub lookup outcomes.
const (
	// ResultOK means addresses were returned.
	ResultOK ResultKind = iota
	// ResultTimeout means no response arrived within the retry schedule.
	ResultTimeout
	// ResultError means the resolver returned a non-zero RCODE
	// (SERVFAIL, NXDOMAIN, ...).
	ResultError
)

func (k ResultKind) String() string {
	switch k {
	case ResultOK:
		return "ok"
	case ResultTimeout:
		return "timeout"
	case ResultError:
		return "error"
	default:
		return "unknown"
	}
}

// Result is the outcome of a stub lookup.
type Result struct {
	Kind  ResultKind
	Addrs []netip.Addr
	RCode dnswire.RCode
	// RTT is the elapsed simulated time of the whole lookup, including
	// retries — the paper's "DNS lookup time".
	RTT time.Duration
}

// DefaultRetrySchedule mirrors a typical 2005-era stub resolver
// (res_send with three tries): per-attempt timeouts summing to ~11 s.
var DefaultRetrySchedule = []time.Duration{3 * time.Second, 3 * time.Second, 5 * time.Second}

// StubResolver is the client-side resolver talking to one LDNS.
type StubResolver struct {
	Host *simnet.Host
	LDNS netip.Addr
	// RetrySchedule lists per-attempt timeouts; nil means
	// DefaultRetrySchedule.
	RetrySchedule []time.Duration

	exch *exchanger
}

// NewStubResolver creates a stub resolver on host pointing at the LDNS.
func NewStubResolver(host *simnet.Host, ldns netip.Addr) *StubResolver {
	return &StubResolver{Host: host, LDNS: ldns, exch: newExchanger(host)}
}

func (s *StubResolver) schedule() []time.Duration {
	if len(s.RetrySchedule) > 0 {
		return s.RetrySchedule
	}
	return DefaultRetrySchedule
}

// LookupA resolves name via the LDNS, retrying per the schedule, and calls
// done exactly once.
func (s *StubResolver) LookupA(name string, done func(Result)) {
	start := s.Host.Now()
	s.attempt(name, 0, start, done)
}

func (s *StubResolver) attempt(name string, try int, start simnet.Time, done func(Result)) {
	sched := s.schedule()
	if try >= len(sched) {
		done(Result{Kind: ResultTimeout, RTT: s.Host.Now().Sub(start)})
		return
	}
	q := dnswire.NewQuery(0, name, dnswire.TypeA, true)
	s.exch.query(s.LDNS, q, sched[try], func(resp *dnswire.Message) {
		if resp == nil {
			s.attempt(name, try+1, start, done)
			return
		}
		rtt := s.Host.Now().Sub(start)
		if resp.Header.RCode != dnswire.RCodeNoError {
			done(Result{Kind: ResultError, RCode: resp.Header.RCode, RTT: rtt})
			return
		}
		var addrs []netip.Addr
		for _, rr := range resp.Answers {
			if rr.Type == dnswire.TypeA {
				addrs = append(addrs, rr.A)
			}
		}
		if len(addrs) == 0 {
			// NOERROR with no A records: treat as an error
			// response, as wget would.
			done(Result{Kind: ResultError, RCode: dnswire.RCodeServFail, RTT: rtt})
			return
		}
		done(Result{Kind: ResultOK, Addrs: addrs, RTT: rtt})
	})
}

// FailureClass is the paper's DNS failure sub-classification (Section 2.1,
// category 1).
type FailureClass uint8

// DNS failure sub-classes.
const (
	// ClassSuccess: the lookup succeeded.
	ClassSuccess FailureClass = iota
	// ClassLDNSTimeout: the LDNS itself is unreachable (down, or
	// client-side connectivity loss).
	ClassLDNSTimeout
	// ClassNonLDNSTimeout: the LDNS responds, but the lookup times out
	// because an authoritative server elsewhere is unreachable.
	ClassNonLDNSTimeout
	// ClassErrorResponse: a definitive error (NXDOMAIN, SERVFAIL) was
	// returned.
	ClassErrorResponse
)

func (c FailureClass) String() string {
	switch c {
	case ClassSuccess:
		return "success"
	case ClassLDNSTimeout:
		return "ldns-timeout"
	case ClassNonLDNSTimeout:
		return "non-ldns-timeout"
	case ClassErrorResponse:
		return "error-response"
	default:
		return "unknown"
	}
}

// DigStep records one hop of an iterative trace.
type DigStep struct {
	Server    netip.Addr
	Responded bool
	RCode     dnswire.RCode
	Referral  bool
	Answered  bool
}

// DigReport is the outcome of an iterative (dig +trace style) resolution,
// used to sub-classify DNS failures the way the paper's post-processing
// does (Section 3.4 step 3, Section 4.2).
type DigReport struct {
	Name string
	// LDNSResponsive reports whether the LDNS answered a direct probe.
	LDNSResponsive bool
	Steps          []DigStep
	Addrs          []netip.Addr
	// Completed is true when the trace reached a terminal answer or
	// error rather than timing out mid-hierarchy.
	Completed bool
	RCode     dnswire.RCode
}

// Classify reduces the report to the paper's failure classes. An
// unresponsive LDNS dominates: even when the iterative walk from the roots
// succeeds, the client's own lookups were broken by the LDNS being
// unreachable, which is precisely the paper's "LDNS timeout" class.
func (r *DigReport) Classify() FailureClass {
	if !r.LDNSResponsive {
		return ClassLDNSTimeout
	}
	if r.Completed && r.RCode != dnswire.RCodeNoError {
		return ClassErrorResponse
	}
	if r.Completed && len(r.Addrs) > 0 {
		return ClassSuccess
	}
	// A timed-out walk in which some server responded (a referral was
	// followed) but a deeper one stayed silent pins the blame on that
	// remote server: the genuine "non-LDNS timeout". When *no* remote
	// server responded at all, the only common element is the client's
	// own access path, which the paper files with the client-side/LDNS
	// class (its dig post-processing ran from the same vantage as wget).
	for _, st := range r.Steps {
		if st.Responded {
			return ClassNonLDNSTimeout
		}
	}
	return ClassLDNSTimeout
}

// Dig performs iterative resolution for diagnosis: first a direct LDNS
// probe, then a walk down from the root servers.
type Dig struct {
	Host      *simnet.Host
	LDNS      netip.Addr
	RootHints []netip.Addr
	// Timeout is the per-query timeout (default 3 s).
	Timeout time.Duration

	exch *exchanger
}

// NewDig creates an iterative tracer.
func NewDig(host *simnet.Host, ldns netip.Addr, rootHints []netip.Addr) *Dig {
	return &Dig{Host: host, LDNS: ldns, RootHints: rootHints, exch: newExchanger(host)}
}

func (d *Dig) timeout() time.Duration {
	if d.Timeout > 0 {
		return d.Timeout
	}
	return 3 * time.Second
}

// Trace resolves name iteratively and calls done exactly once with the
// report.
func (d *Dig) Trace(name string, done func(*DigReport)) {
	name = dnswire.Canonical(name)
	rep := &DigReport{Name: name}
	// Step 1: probe the LDNS with a root-server A query it can answer
	// from hints without recursing. Any response proves responsiveness;
	// this avoids conflating a slow recursion for the (possibly broken)
	// target name with LDNS unreachability.
	q := dnswire.NewQuery(0, ProbeName, dnswire.TypeA, true)
	d.exch.query(d.LDNS, q, d.timeout(), func(resp *dnswire.Message) {
		rep.LDNSResponsive = resp != nil
		// Step 2: walk the hierarchy from the roots.
		d.walk(rep, name, d.RootHints, 0, 0, func() { done(rep) })
	})
}

// walk queries the given servers for name, following referrals and CNAMEs.
func (d *Dig) walk(rep *DigReport, name string, servers []netip.Addr, depth, cnames int, done func()) {
	if depth > maxReferrals || cnames > maxCNAMEChain || len(servers) == 0 {
		done()
		return
	}
	d.trySrv(rep, name, servers, 0, func(resp *dnswire.Message) {
		if resp == nil {
			done()
			return
		}
		if resp.Header.RCode != dnswire.RCodeNoError {
			rep.Completed = true
			rep.RCode = resp.Header.RCode
			done()
			return
		}
		var cname string
		for _, rr := range resp.Answers {
			switch rr.Type {
			case dnswire.TypeA:
				rep.Addrs = append(rep.Addrs, rr.A)
			case dnswire.TypeCNAME:
				cname = rr.Target
			}
		}
		if len(rep.Addrs) > 0 {
			rep.Completed = true
			done()
			return
		}
		if cname != "" {
			d.walk(rep, cname, d.RootHints, depth+1, cnames+1, done)
			return
		}
		glue := make(map[string]netip.Addr)
		for _, rr := range resp.Additional {
			if rr.Type == dnswire.TypeA {
				glue[rr.Name] = rr.A
			}
		}
		var next []netip.Addr
		for _, rr := range resp.Authority {
			if rr.Type == dnswire.TypeNS {
				if a, ok := glue[rr.Target]; ok {
					next = append(next, a)
				}
			}
		}
		if len(next) == 0 {
			done()
			return
		}
		d.walk(rep, name, next, depth+1, cnames, done)
	})
}

func (d *Dig) trySrv(rep *DigReport, name string, servers []netip.Addr, i int, done func(*dnswire.Message)) {
	if i >= len(servers) {
		done(nil)
		return
	}
	q := dnswire.NewQuery(0, name, dnswire.TypeA, false)
	srv := servers[i]
	d.exch.query(srv, q, d.timeout(), func(resp *dnswire.Message) {
		step := DigStep{Server: srv, Responded: resp != nil}
		if resp != nil {
			step.RCode = resp.Header.RCode
			step.Referral = len(resp.Authority) > 0 && len(resp.Answers) == 0
			step.Answered = len(resp.Answers) > 0
		}
		rep.Steps = append(rep.Steps, step)
		if resp != nil {
			done(resp)
			return
		}
		d.trySrv(rep, name, servers, i+1, done)
	})
}
