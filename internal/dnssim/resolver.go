package dnssim

import (
	"net/netip"
	"time"

	"webfail/internal/dnswire"
	"webfail/internal/simnet"
)

// Timing defaults for the recursive resolver. Per-upstream-query timeout is
// short and retried across the candidate name servers; the overall
// recursion budget is generous, so when authoritative servers are
// unreachable the *client* gives up before the LDNS does — producing the
// paper's "non-LDNS timeout" signature (responsive LDNS, lookup times out).
const (
	defaultUpstreamTimeout = 2 * time.Second
	defaultRecursionBudget = 30 * time.Second
	maxReferrals           = 16
	maxCNAMEChain          = 8
)

// ProbeName is the root-server name used to test LDNS responsiveness
// without triggering recursion.
const ProbeName = "a.root-servers.net"

// cacheEntry is a cached positive answer.
type cacheEntry struct {
	addrs   []netip.Addr
	expires simnet.Time
}

// LDNS is a caching recursive resolver bound to port 53 of its host.
// Its availability is controlled by Status; when down, it drops queries
// (the client observes an "LDNS timeout", the dominant DNS failure class
// in the paper at 74–83%).
type LDNS struct {
	Host   *simnet.Host
	Status StatusFunc

	// RootHints are the root server addresses recursion starts from.
	RootHints []netip.Addr

	// UpstreamTimeout and RecursionBudget override the defaults when
	// non-zero.
	UpstreamTimeout time.Duration
	RecursionBudget time.Duration

	exch  *exchanger
	enc   []byte // recycled response-encoding scratch
	cache map[string]cacheEntry

	// Stats observable by tests and the harness.
	Hits, Misses, Recursions uint64
}

// NewLDNS binds a recursive resolver to the host.
func NewLDNS(host *simnet.Host, rootHints []netip.Addr) *LDNS {
	l := &LDNS{
		Host:      host,
		RootHints: rootHints,
		exch:      newExchanger(host),
		cache:     make(map[string]cacheEntry),
	}
	if err := host.Bind(simnet.UDP, Port, l.handle); err != nil {
		panic("dnssim: ldns bind: " + err.Error())
	}
	return l
}

// FlushCache drops all cached entries, as the measurement procedure does
// before every download (Section 3.4 step 1).
func (l *LDNS) FlushCache() { clear(l.cache) }

func (l *LDNS) status() Status {
	if l.Status == nil {
		return StatusUp
	}
	return l.Status(l.Host.Now())
}

func (l *LDNS) upstreamTimeout() time.Duration {
	if l.UpstreamTimeout > 0 {
		return l.UpstreamTimeout
	}
	return defaultUpstreamTimeout
}

func (l *LDNS) recursionBudget() time.Duration {
	if l.RecursionBudget > 0 {
		return l.RecursionBudget
	}
	return defaultRecursionBudget
}

// handle serves a client query.
func (l *LDNS) handle(pkt *simnet.Packet) {
	q, srcPort, ok := decodeQuery(pkt)
	if !ok {
		return
	}
	if l.status() == StatusDown {
		return // unreachable LDNS: client times out
	}
	name := q.Questions[0].Name
	src := pkt.Src

	if name == ProbeName {
		// Responsiveness probe: answered from the root hints without
		// recursion, mirroring the root-server A-record availability
		// check of Pang et al. (reference [22] in the paper).
		resp := dnswire.NewResponse(q, dnswire.RCodeNoError, false)
		for _, a := range l.RootHints {
			resp.Answers = append(resp.Answers, dnswire.RR{Name: name, Type: dnswire.TypeA, TTL: 3600, A: a})
		}
		replyUDP(l.Host, &l.enc, src, srcPort, resp)
		return
	}

	if e, ok := l.cache[name]; ok && e.expires > l.Host.Now() {
		l.Hits++
		resp := dnswire.NewResponse(q, dnswire.RCodeNoError, false)
		for _, a := range e.addrs {
			resp.Answers = append(resp.Answers, dnswire.RR{Name: name, Type: dnswire.TypeA, TTL: 30, A: a})
		}
		replyUDP(l.Host, &l.enc, src, srcPort, resp)
		return
	}
	l.Misses++
	l.Recursions++

	deadline := l.Host.Now().Add(l.recursionBudget())
	l.recurseWithRetry(name, deadline, func(addrs []netip.Addr, rcode dnswire.RCode, ok bool) {
		if l.status() == StatusDown {
			return
		}
		if !ok {
			// Recursion exhausted its budget; answer SERVFAIL so a
			// *patient* client eventually sees an error. In
			// practice the stub's shorter timeout fires first,
			// which is what makes an unreachable authoritative
			// server look like a "non-LDNS timeout" at the client.
			replyUDP(l.Host, &l.enc, src, srcPort, dnswire.NewResponse(q, dnswire.RCodeServFail, false))
			return
		}
		if rcode != dnswire.RCodeNoError {
			replyUDP(l.Host, &l.enc, src, srcPort, dnswire.NewResponse(q, rcode, false))
			return
		}
		l.cache[name] = cacheEntry{addrs: addrs, expires: l.Host.Now().Add(60 * time.Second)}
		resp := dnswire.NewResponse(q, dnswire.RCodeNoError, false)
		for _, a := range addrs {
			resp.Answers = append(resp.Answers, dnswire.RR{Name: name, Type: dnswire.TypeA, TTL: 30, A: a})
		}
		replyUDP(l.Host, &l.enc, src, srcPort, resp)
	})
}

// recurseWithRetry drives full recursion attempts until one terminates
// definitively (answer or error rcode) or the budget deadline passes. A
// real resolver similarly re-walks the hierarchy while its client is still
// waiting rather than failing on the first unresponsive server set.
func (l *LDNS) recurseWithRetry(name string, deadline simnet.Time, done func([]netip.Addr, dnswire.RCode, bool)) {
	l.recurse(name, name, l.RootHints, 0, 0, deadline, func(addrs []netip.Addr, rcode dnswire.RCode, ok bool) {
		if ok {
			done(addrs, rcode, true)
			return
		}
		const retryPause = time.Second
		if l.Host.Now().Add(retryPause) >= deadline {
			done(nil, 0, false)
			return
		}
		l.Host.Network().Sched.After(retryPause, func() {
			l.recurseWithRetry(name, deadline, done)
		})
	})
}

// recurse iteratively resolves name starting from the servers list,
// following referrals and CNAMEs. done is called exactly once with either
// (addrs, NOERROR, true), (nil, errorRCode, true), or (nil, 0, false) when
// the budget or referral depth is exhausted.
func (l *LDNS) recurse(origName, name string, servers []netip.Addr, depth, cnames int, deadline simnet.Time, done func([]netip.Addr, dnswire.RCode, bool)) {
	if depth > maxReferrals || cnames > maxCNAMEChain || len(servers) == 0 {
		done(nil, 0, false)
		return
	}
	l.tryServers(name, servers, 0, deadline, func(resp *dnswire.Message) {
		if resp == nil {
			done(nil, 0, false)
			return
		}
		if resp.Header.RCode != dnswire.RCodeNoError {
			done(nil, resp.Header.RCode, true)
			return
		}
		var addrs []netip.Addr
		var cname string
		for _, rr := range resp.Answers {
			switch rr.Type {
			case dnswire.TypeA:
				addrs = append(addrs, rr.A)
			case dnswire.TypeCNAME:
				cname = rr.Target
			}
		}
		if len(addrs) > 0 {
			done(addrs, dnswire.RCodeNoError, true)
			return
		}
		if cname != "" {
			// Restart resolution for the CNAME target from the
			// roots.
			l.recurse(origName, cname, l.RootHints, depth+1, cnames+1, deadline, done)
			return
		}
		// Referral: gather glue addresses.
		var next []netip.Addr
		glue := make(map[string]netip.Addr)
		for _, rr := range resp.Additional {
			if rr.Type == dnswire.TypeA {
				glue[rr.Name] = rr.A
			}
		}
		for _, rr := range resp.Authority {
			if rr.Type == dnswire.TypeNS {
				if a, ok := glue[rr.Target]; ok {
					next = append(next, a)
				}
			}
		}
		if len(next) == 0 {
			// Lame referral (no usable glue): treat as failure.
			done(nil, 0, false)
			return
		}
		l.recurse(origName, name, next, depth+1, cnames, deadline, done)
	})
}

// tryServers queries servers[i:] in order until one responds or all time
// out or the deadline passes.
func (l *LDNS) tryServers(name string, servers []netip.Addr, i int, deadline simnet.Time, done func(*dnswire.Message)) {
	if i >= len(servers) || l.Host.Now() >= deadline {
		done(nil)
		return
	}
	timeout := l.upstreamTimeout()
	if remaining := deadline.Sub(l.Host.Now()); remaining < timeout {
		timeout = remaining
	}
	if timeout <= 0 {
		done(nil)
		return
	}
	q := dnswire.NewQuery(0, name, dnswire.TypeA, false)
	l.exch.query(servers[i], q, timeout, func(resp *dnswire.Message) {
		if resp != nil {
			done(resp)
			return
		}
		l.tryServers(name, servers, i+1, deadline, done)
	})
}
